(* Wire protocol of the multi-tenant analysis service.

   Every message — request or response — travels as one length-prefixed
   checksummed frame:

     s89 <payload-bytes> <fnv64-hex>\n<payload>

   The checksum is the store's FNV-1a/64 (the WAL record checksum), so a
   frame torn or corrupted in flight is detected the same way a torn WAL
   record is.  Frames are bounded ([max_frame] bytes of payload): a
   malformed or oversized header is a NET002 protocol error, never an
   unbounded allocation driven by untrusted bytes.

   The payload is line-oriented text.  Requests:

     submit <tenant> <job> <runs> <seed> <deadline>\n<source...>
     status <tenant> <job>
     result <tenant> <job>
     metrics

   Responses:

     accepted <job>
     rejected <retry-after-seconds>\n<reason>
     status <state> <completed> <total>
     result <state>\n<body...>
     metrics\n<text...>
     error <code>\n<message>

   [deadline] is a relative budget in seconds (0 = none); the server
   turns it into an absolute wall-clock deadline at admission.  Tenant
   and job names are restricted to [A-Za-z0-9_.-], at most 64 bytes —
   they become path components of the sharded store, so the grammar is
   the path-traversal defence.

   The codecs are pure string functions (decode never raises on
   arbitrary bytes — the fuzzer's net mode feeds it garbage); the
   [read_frame]/[write_frame] pair does the blocking socket I/O with
   EINTR retry and short-read handling. *)

module Wal = S89_store.Wal

let max_frame = 4 * 1024 * 1024
let max_name = 64

type request =
  | Submit of {
      tenant : string;
      job : string;
      runs : int;
      seed : int;
      deadline : float;
      source : string;
    }
  | Status of { tenant : string; job : string }
  | Result of { tenant : string; job : string }
  | Metrics

type response =
  | Accepted of { job : string }
  | Rejected of { retry_after : float; reason : string }
  | Job_status of { state : string; completed : int; total : int }
  | Job_result of { state : string; body : string }
  | Metrics_text of string
  | Error_resp of { code : string; message : string }

(* ---------------- names ---------------- *)

let name_ok s =
  let n = String.length s in
  n > 0 && n <= max_name
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> true
         | _ -> false)
       s

(* ---------------- framing ---------------- *)

let frame payload =
  Printf.sprintf "s89 %d %016Lx\n%s" (String.length payload)
    (Wal.fnv64 payload) payload

(* split a raw frame image back into its payload; [Error] = NET002 *)
let unframe raw =
  match String.index_opt raw '\n' with
  | None -> Error "missing frame header terminator"
  | Some nl -> (
      let header = String.sub raw 0 nl in
      match String.split_on_char ' ' header with
      | [ "s89"; len; sum ] -> (
          match (int_of_string_opt len, Int64.of_string_opt ("0x" ^ sum)) with
          | Some len, Some sum when len >= 0 && len <= max_frame ->
              let payload_start = nl + 1 in
              if String.length raw - payload_start <> len then
                Error "frame length mismatch"
              else
                let payload = String.sub raw payload_start len in
                if Wal.fnv64 payload <> sum then Error "frame checksum mismatch"
                else Ok payload
          | _ -> Error "malformed frame header")
      | _ -> Error "malformed frame header")

(* ---------------- payload codecs ---------------- *)

(* first line / rest split; a missing newline means an empty rest *)
let split_body s =
  match String.index_opt s '\n' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let encode_request = function
  | Submit { tenant; job; runs; seed; deadline; source } ->
      Printf.sprintf "submit %s %s %d %d %.17g\n%s" tenant job runs seed
        deadline source
  | Status { tenant; job } -> Printf.sprintf "status %s %s" tenant job
  | Result { tenant; job } -> Printf.sprintf "result %s %s" tenant job
  | Metrics -> "metrics"

let decode_request payload =
  let line, body = split_body payload in
  match String.split_on_char ' ' line with
  | [ "submit"; tenant; job; runs; seed; deadline ] -> (
      if not (name_ok tenant) then Error "invalid tenant name"
      else if not (name_ok job) then Error "invalid job name"
      else
        match
          (int_of_string_opt runs, int_of_string_opt seed,
           float_of_string_opt deadline)
        with
        | Some runs, Some seed, Some deadline
          when runs > 0 && deadline >= 0.0 && Float.is_finite deadline ->
            Ok (Submit { tenant; job; runs; seed; deadline; source = body })
        | _ -> Error "malformed submit parameters")
  | [ "status"; tenant; job ] when name_ok tenant && name_ok job ->
      Ok (Status { tenant; job })
  | [ "result"; tenant; job ] when name_ok tenant && name_ok job ->
      Ok (Result { tenant; job })
  | [ "metrics" ] -> Ok Metrics
  | _ -> Error "unrecognized request"

(* Human-facing rendering of a retry-after.  The wire (below) keeps
   %.17g so the float round-trips exactly; people get %.3g — a server
   computing [1.0 -. epsilon] must not leak
   "retry after 0.99999999999999989s" into CLI output. *)
let pp_retry_after retry_after = Printf.sprintf "%.3g" retry_after

let encode_response = function
  | Accepted { job } -> Printf.sprintf "accepted %s" job
  | Rejected { retry_after; reason } ->
      Printf.sprintf "rejected %.17g\n%s" retry_after reason
  | Job_status { state; completed; total } ->
      Printf.sprintf "status %s %d %d" state completed total
  | Job_result { state; body } -> Printf.sprintf "result %s\n%s" state body
  | Metrics_text text -> Printf.sprintf "metrics\n%s" text
  | Error_resp { code; message } -> Printf.sprintf "error %s\n%s" code message

let decode_response payload =
  let line, body = split_body payload in
  match String.split_on_char ' ' line with
  | [ "accepted"; job ] when name_ok job -> Ok (Accepted { job })
  | [ "rejected"; retry ] -> (
      match float_of_string_opt retry with
      | Some retry_after when retry_after >= 0.0 ->
          Ok (Rejected { retry_after; reason = body })
      | _ -> Error "malformed rejected response")
  | [ "status"; state; completed; total ] -> (
      match (int_of_string_opt completed, int_of_string_opt total) with
      | Some completed, Some total when completed >= 0 && total >= 0 ->
          Ok (Job_status { state; completed; total })
      | _ -> Error "malformed status response")
  | [ "result"; state ] -> Ok (Job_result { state; body })
  | [ "metrics" ] -> Ok (Metrics_text body)
  | [ "error"; code ] -> Ok (Error_resp { code; message = body })
  | _ -> Error "unrecognized response"

(* ---------------- socket I/O ---------------- *)

exception Closed
exception Timed_out

let rec retry_intr f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    let w = retry_intr (fun () -> Unix.write_substring fd s !off (n - !off)) in
    if w = 0 then raise Closed;
    off := !off + w
  done

(* One read against an ABSOLUTE frame deadline (the slowloris defence):
   SO_RCVTIMEO alone only bounds the gap between bytes, so a client
   dripping one byte per interval holds a connection (and its thread +
   fd) forever.  Before every read the remaining budget is re-armed as
   the socket timeout; once the deadline passes, [Timed_out].  Without a
   deadline this is a plain blocking read. *)
let read_some ?deadline fd buf off len =
  match deadline with
  | None ->
      let r = retry_intr (fun () -> Unix.read fd buf off len) in
      if r = 0 then raise Closed;
      r
  | Some dl ->
      let rec go () =
        let remaining = dl -. Unix.gettimeofday () in
        if remaining <= 0.0 then raise Timed_out;
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO (Float.max 0.001 remaining);
        match Unix.read fd buf off len with
        | 0 -> raise Closed
        | r -> r
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
            go ()
      in
      go ()

let read_exact ?deadline fd n =
  let buf = Bytes.create n in
  let off = ref 0 in
  while !off < n do
    off := !off + read_some ?deadline fd buf !off (n - !off)
  done;
  Bytes.unsafe_to_string buf

(* the header is tiny ("s89 <len> <sum>\n" ≤ ~40 bytes); read it byte by
   byte so we never consume payload bytes past the newline *)
let read_header ?deadline fd =
  let buf = Buffer.create 32 in
  let one = Bytes.create 1 in
  let rec go () =
    if Buffer.length buf > 64 then Error "frame header too long"
    else begin
      ignore (read_some ?deadline fd one 0 1 : int);
      if Bytes.get one 0 = '\n' then Ok (Buffer.contents buf)
      else begin
        Buffer.add_char buf (Bytes.get one 0);
        go ()
      end
    end
  in
  go ()

(* [Ok payload] | [Error msg] (NET002 material); raises [Closed] on EOF
   before a full frame, [Timed_out] past the deadline, [Unix.Unix_error]
   on socket errors *)
let read_frame ?deadline fd =
  match read_header ?deadline fd with
  | Error _ as e -> e
  | Ok header -> (
      match String.split_on_char ' ' header with
      | [ "s89"; len; sum ] -> (
          match (int_of_string_opt len, Int64.of_string_opt ("0x" ^ sum)) with
          | Some len, Some sum when len >= 0 && len <= max_frame ->
              let payload = read_exact ?deadline fd len in
              if Wal.fnv64 payload <> sum then Error "frame checksum mismatch"
              else Ok payload
          | _ -> Error "malformed frame header")
      | _ -> Error "malformed frame header")

let write_frame fd payload = write_all fd (frame payload)

let send_request fd r = write_frame fd (encode_request r)
let send_response fd r = write_frame fd (encode_response r)

let recv_response fd =
  match read_frame fd with
  | Error e -> Error ("bad frame: " ^ e)
  | Ok payload -> decode_response payload
