(* Per-tenant admission governance: token-bucket rate limiting plus
   byte/job disk quotas.

   Each tenant owns a token bucket ([burst] capacity, [rate] tokens per
   second) and a usage ledger (durable bytes and live jobs).  [admit]
   checks quotas first — a tenant over its byte or job quota is shed
   regardless of rate, since retrying soon cannot help until GC or
   completion frees capacity — then takes one token, answering a
   rejected submit with the exact delay until the bucket refills
   ([retry-after = (1 - tokens) / rate]).  All checks commit atomically:
   a rejection consumes nothing.

   The ledger is rebuilt from the store scan on server restart
   ([charge]), so quotas survive crashes; the buckets deliberately reset
   to full — a restarted server owes no memory of old traffic.

   The clock is injectable so refill is testable (and QCheck can prove
   the window bound: admissions over any window of length dt never
   exceed burst + rate * dt). *)

type limits = {
  rate : float;  (* token refill per second; <= 0 disables rate limiting *)
  burst : int;  (* bucket capacity (max admissions in an instant) *)
  max_bytes : int;  (* per-tenant durable bytes; <= 0 disables *)
  max_jobs : int;  (* per-tenant live jobs; <= 0 disables *)
}

let unlimited = { rate = 0.0; burst = 0; max_bytes = 0; max_jobs = 0 }

type reject =
  | Rate_limited of { retry_after : float }
  | Bytes_exceeded of { used : int; limit : int }
  | Jobs_exceeded of { used : int; limit : int }

type tenant = {
  mutable tokens : float;
  mutable refilled : float;  (* clock time of the last refill *)
  mutable bytes : int;
  mutable jobs : int;
}

type t = {
  limits : limits;
  clock : unit -> float;
  mu : Mutex.t;
  tenants : (string, tenant) Hashtbl.t;
}

let create ?(clock = Unix.gettimeofday) limits =
  { limits; clock; mu = Mutex.create (); tenants = Hashtbl.create 8 }

let limits t = t.limits

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let get t name =
  match Hashtbl.find_opt t.tenants name with
  | Some s -> s
  | None ->
      let s =
        { tokens = float_of_int t.limits.burst; refilled = t.clock ();
          bytes = 0; jobs = 0 }
      in
      Hashtbl.replace t.tenants name s;
      s

let rate_limiting t = t.limits.rate > 0.0 && t.limits.burst > 0

let refill t s =
  if rate_limiting t then begin
    let now = t.clock () in
    let dt = now -. s.refilled in
    if dt > 0.0 then begin
      s.tokens <-
        Float.min (float_of_int t.limits.burst) (s.tokens +. (t.limits.rate *. dt));
      s.refilled <- now
    end
  end

let admit t ~tenant ~bytes =
  locked t @@ fun () ->
  let s = get t tenant in
  refill t s;
  if t.limits.max_jobs > 0 && s.jobs + 1 > t.limits.max_jobs then
    Error (Jobs_exceeded { used = s.jobs; limit = t.limits.max_jobs })
  else if t.limits.max_bytes > 0 && s.bytes + bytes > t.limits.max_bytes then
    Error (Bytes_exceeded { used = s.bytes; limit = t.limits.max_bytes })
  else if rate_limiting t && s.tokens < 1.0 then
    Error
      (Rate_limited { retry_after = (1.0 -. s.tokens) /. t.limits.rate })
  else begin
    if rate_limiting t then s.tokens <- s.tokens -. 1.0;
    s.bytes <- s.bytes + bytes;
    s.jobs <- s.jobs + 1;
    Ok ()
  end

(* ledger adjustment without touching the bucket: recovery seeding and
   post-completion growth (positive), GC reclamation (negative) *)
let charge t ~tenant ~bytes ~jobs =
  locked t @@ fun () ->
  let s = get t tenant in
  s.bytes <- Stdlib.max 0 (s.bytes + bytes);
  s.jobs <- Stdlib.max 0 (s.jobs + jobs)

let usage t ~tenant =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.tenants tenant with
  | Some s -> (s.bytes, s.jobs)
  | None -> (0, 0)

let usages t =
  locked t @@ fun () ->
  Hashtbl.fold (fun name s acc -> (name, s.bytes, s.jobs) :: acc) t.tenants []
  |> List.sort compare

(* stable reason text + retry-after for the NET004 wire rejection; quota
   rejections advise [quota_retry] (they clear on GC, not on a timer) *)
let describe ~quota_retry = function
  | Rate_limited { retry_after } ->
      (Printf.sprintf "NET004 rate limit exceeded", Float.max 0.001 retry_after)
  | Bytes_exceeded { used; limit } ->
      ( Printf.sprintf "NET004 byte quota exceeded (%d of %d bytes in use)" used
          limit,
        quota_retry )
  | Jobs_exceeded { used; limit } ->
      ( Printf.sprintf "NET004 job quota exceeded (%d of %d jobs live)" used
          limit,
        quota_retry )
