(** Per-tenant admission governance: token-bucket rate limiting plus
    byte/job disk quotas, enforced at the server's admission chokepoint
    (rejections travel as [NET004] with a retry-after derived from the
    bucket refill).  The byte/job ledger is rebuilt from the store scan
    on restart; the buckets reset to full.  The clock is injectable so
    refill is testable. *)

type limits = {
  rate : float;  (** token refill per second; [<= 0] disables rate limiting *)
  burst : int;  (** bucket capacity (max admissions in an instant) *)
  max_bytes : int;  (** per-tenant durable bytes; [<= 0] disables *)
  max_jobs : int;  (** per-tenant live jobs; [<= 0] disables *)
}

(** All governance off (every limit disabled). *)
val unlimited : limits

type reject =
  | Rate_limited of { retry_after : float }
      (** the bucket is empty; [retry_after] is the exact delay until the
          next token *)
  | Bytes_exceeded of { used : int; limit : int }
  | Jobs_exceeded of { used : int; limit : int }

type t

val create : ?clock:(unit -> float) -> limits -> t
val limits : t -> limits

(** Take one token and charge [bytes] + one job to [tenant] — atomically:
    a rejection consumes nothing.  Quota checks run before the bucket so
    a capped tenant is shed without burning tokens. *)
val admit : t -> tenant:string -> bytes:int -> (unit, reject) result

(** Ledger adjustment without touching the bucket: positive for recovery
    seeding and post-completion growth, negative when GC reclaims.
    Usage never goes below zero. *)
val charge : t -> tenant:string -> bytes:int -> jobs:int -> unit

(** Current [(bytes, jobs)] ledger for one tenant. *)
val usage : t -> tenant:string -> int * int

(** Every tenant's [(name, bytes, jobs)], sorted by name (metrics). *)
val usages : t -> (string * int * int) list

(** Stable [NET004] reason text + retry-after for a rejection.  Rate
    rejections carry their refill delay; quota rejections advise
    [quota_retry] (they clear on GC or completion, not on a timer). *)
val describe : quota_retry:float -> reject -> string * float
