(** Wire protocol of the multi-tenant analysis service: length-prefixed
    FNV-1a/64-checksummed frames ([s89 <len> <sum-hex>\n<payload>])
    carrying line-oriented request/response payloads.  The codecs are
    pure ({!decode_request}/{!decode_response} never raise on arbitrary
    bytes — the fuzzer's net mode feeds them garbage); the
    {!read_frame}/{!write_frame} pair does the blocking socket I/O. *)

(** Maximum payload bytes per frame (oversized frames are NET002). *)
val max_frame : int

(** Maximum tenant/job name length.  Names are restricted to
    [A-Za-z0-9_.-]: they become path components of the sharded store, so
    the grammar is the path-traversal defence. *)
val max_name : int

val name_ok : string -> bool

type request =
  | Submit of {
      tenant : string;
      job : string;
      runs : int;
      seed : int;
      deadline : float;  (** relative budget, seconds; 0 = none *)
      source : string;
    }
  | Status of { tenant : string; job : string }
  | Result of { tenant : string; job : string }
  | Metrics

type response =
  | Accepted of { job : string }
  | Rejected of { retry_after : float; reason : string }
      (** admission refused — NET001 (queue full / breaker open), NET004
          (rate limit / quota) or SRV007 (disk pressure), named in
          [reason]; retry after [retry_after] seconds *)
  | Job_status of { state : string; completed : int; total : int }
  | Job_result of { state : string; body : string }
  | Metrics_text of string
  | Error_resp of { code : string; message : string }

(** Wrap a payload in the on-wire frame. *)
val frame : string -> string

(** Split a raw frame image back into its payload ([Error] = NET002
    material).  Total function — never raises. *)
val unframe : string -> (string, string) result

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result

(** Render a retry-after for HUMAN-facing output ([%.3g]).  The wire
    serializes [%.17g] so the float round-trips exactly; this keeps
    [0.99999999999999989]-style noise out of the CLI. *)
val pp_retry_after : float -> string

(** Raised by the I/O functions on EOF mid-frame / closed peer. *)
exception Closed

(** Raised by {!read_frame} when the frame's absolute [?deadline]
    passes before the frame completes. *)
exception Timed_out

(** Read one frame ([Error] on malformed header or checksum mismatch —
    the connection should be dropped after answering NET002).  Raises
    {!Closed} on EOF, [Unix.Unix_error] on socket errors/timeouts.

    [?deadline] (absolute, [Unix.gettimeofday] base) bounds the WHOLE
    frame, re-armed before every read — the slowloris defence: a client
    dripping one byte per interval trips {!Timed_out} at the deadline
    instead of holding its connection, thread and fd forever.  Requires
    [fd] to be a socket (the remaining budget is re-armed as
    [SO_RCVTIMEO]). *)
val read_frame : ?deadline:float -> Unix.file_descr -> (string, string) result

val write_frame : Unix.file_descr -> string -> unit
val send_request : Unix.file_descr -> request -> unit
val send_response : Unix.file_descr -> response -> unit
val recv_response : Unix.file_descr -> (response, string) result
