(** Multi-tenant TCP analysis service over the {!Proto} wire protocol:
    a listener thread accepts connections, jobs are admitted through a
    bounded per-tenant {!Admission} queue with weighted-fair dequeue
    into a pool of worker domains, each job runs as a checkpointed
    {!S89_core.Service} batch in its own WAL-backed store sharded by
    source fingerprint ([store_root/shard-%02x/<tenant>__<job>/]).

    Guarantees: a job is acked only after its source and metadata are
    atomically durable, so a server killed at any point restarts into a
    consistent registry (startup scan) and resumed batches produce
    byte-identical reports — completed runs are never lost.  Overflow
    is refused immediately (NET001 + retry-after); deadlines are
    enforced at run boundaries (SRV004, partial results kept); a
    per-tenant circuit breaker sheds a failing tenant's load without
    touching other tenants.

    Resource governance: admission also passes a per-tenant {!Quota}
    gate (token bucket + byte/job ledgers, NET004 on refusal, ledger
    rebuilt by the startup scan); a background GC collects finished
    jobs past [retain_done] and evicts oldest-finished-first above
    [max_store_bytes], tombstoning each dir ([job.tomb]) before the
    delete so a crash mid-collection can never resurrect — or lose —
    anything.  Durable-write failures (ENOSPC/EIO, real or injected)
    flip a disk-pressure breaker (SRV007): new admissions are shed while
    accepted jobs finish from memory, and a rate-limited probe write
    clears the state when the disk recovers.  Connections are capped at
    [max_connections] and every frame read is bounded by an absolute
    deadline (slowloris defence). *)

module Supervise = S89_exec.Supervise
module Cost_model = S89_vm.Cost_model

type config = {
  port : int;  (** 0 = ephemeral (see {!port} for the bound one) *)
  workers : int;  (** worker domains; each runs one batch at a time *)
  queue_capacity : int;  (** max queued jobs per tenant *)
  tenant_weights : (string * int) list;
      (** SWRR weights; unlisted tenants weigh 1 *)
  fsync : bool;
  policy : Supervise.policy;  (** per-tenant breaker (keyed by tenant) *)
  cost_model : Cost_model.t;
  recv_timeout : float;
      (** absolute per-frame read deadline, seconds (slowloris bound) *)
  quota : Quota.limits;  (** per-tenant rate/burst + byte/job quotas *)
  max_connections : int;
      (** concurrent connection cap; [<= 0] = unlimited *)
  retain_done : float;
      (** keep finished jobs this long, seconds; [< 0] = forever *)
  max_store_bytes : int;
      (** GC size bound on the store root; [<= 0] = unbounded *)
  gc_interval : float;  (** maintenance thread period, seconds *)
  disk_probe_interval : float;
      (** min gap between disk-pressure probe writes, seconds *)
}

(** Port 0, 2 workers, capacity 64, fsync on, breaker at 5 consecutive
    failures with a 2s cooldown (no restarts — a deterministic job
    failure only burns one attempt), 30s receive deadline, quotas off,
    256 connections, retention forever, no size bound, 2s GC period,
    0.25s probe gap. *)
val default_config : config

type t

(** Bind, recover (sweep tombstoned dirs, re-register finished/failed
    jobs and seed the quota ledger, re-enqueue the rest), spawn the
    worker domains, the listener thread and the GC thread. *)
val start : ?config:config -> store_root:string -> unit -> t

(** The actually-bound port (differs from [config.port] when 0). *)
val port : t -> int

(** Graceful stop: refuse new work, interrupt running batches at the
    next run boundary (their runs stay durable; the jobs re-enqueue on
    the next start), join workers, listener and GC thread. *)
val stop : t -> unit

(** Block until the server stops (listener + workers exit). *)
val wait : t -> unit

(** Run one GC pass synchronously (retention + size bound); returns the
    number of jobs collected.  The background thread calls this every
    [gc_interval]; tests call it directly. *)
val gc_now : t -> int

(** The [/metrics]-style text document: job counters, per-tenant queue
    depth / breaker state / quota ledgers, connection and fd budgets,
    disk-pressure state, GC counters, store size, p50/p99 job latency. *)
val metrics_text : t -> string

(** Minimal blocking client for the CLI, benchmarks and soak tests. *)
module Client : sig
  (** Connect to [host:port] (default host 127.0.0.1).  Raises
      [Unix.Unix_error] on refusal. *)
  val connect : ?host:string -> port:int -> unit -> Unix.file_descr

  (** One request/response exchange on the connection. *)
  val rpc : Unix.file_descr -> Proto.request -> (Proto.response, string) result

  val close : Unix.file_descr -> unit

  (** Backoff for the CLI's [--retries]: the server's advised
      [retry_after] is the floor, exponential above it
      ([0.1 * 2^attempt], capped at 5 s), spread up to +25 % by
      [jitter] in [0, 1].  Pure — same inputs, same delay. *)
  val retry_delay : attempt:int -> retry_after:float -> jitter:float -> float
end
