(** Multi-tenant TCP analysis service over the {!Proto} wire protocol:
    a listener thread accepts connections, jobs are admitted through a
    bounded per-tenant {!Admission} queue with weighted-fair dequeue
    into a pool of worker domains, each job runs as a checkpointed
    {!S89_core.Service} batch in its own WAL-backed store sharded by
    source fingerprint ([store_root/shard-%02x/<tenant>__<job>/]).

    Guarantees: a job is acked only after its source and metadata are
    atomically durable, so a server killed at any point restarts into a
    consistent registry (startup scan) and resumed batches produce
    byte-identical reports — completed runs are never lost.  Overflow
    is refused immediately (NET001 + retry-after); deadlines are
    enforced at run boundaries (SRV004, partial results kept); a
    per-tenant circuit breaker sheds a failing tenant's load without
    touching other tenants. *)

module Supervise = S89_exec.Supervise
module Cost_model = S89_vm.Cost_model

type config = {
  port : int;  (** 0 = ephemeral (see {!port} for the bound one) *)
  workers : int;  (** worker domains; each runs one batch at a time *)
  queue_capacity : int;  (** max queued jobs per tenant *)
  tenant_weights : (string * int) list;
      (** SWRR weights; unlisted tenants weigh 1 *)
  fsync : bool;
  policy : Supervise.policy;  (** per-tenant breaker (keyed by tenant) *)
  cost_model : Cost_model.t;
  recv_timeout : float;  (** per-connection receive timeout, seconds *)
}

(** Port 0, 2 workers, capacity 64, fsync on, breaker at 5 consecutive
    failures with a 2s cooldown (no restarts — a deterministic job
    failure only burns one attempt), 30s receive timeout. *)
val default_config : config

type t

(** Bind, recover (re-register finished/failed jobs, re-enqueue the
    rest), spawn the worker domains and the listener thread. *)
val start : ?config:config -> store_root:string -> unit -> t

(** The actually-bound port (differs from [config.port] when 0). *)
val port : t -> int

(** Graceful stop: refuse new work, interrupt running batches at the
    next run boundary (their runs stay durable; the jobs re-enqueue on
    the next start), join workers and listener. *)
val stop : t -> unit

(** Block until the server stops (listener + workers exit). *)
val wait : t -> unit

(** The [/metrics]-style text document: job counters, per-tenant queue
    depth and breaker state, p50/p99 job latency. *)
val metrics_text : t -> string

(** Minimal blocking client for the CLI, benchmarks and soak tests. *)
module Client : sig
  (** Connect to [host:port] (default host 127.0.0.1).  Raises
      [Unix.Unix_error] on refusal. *)
  val connect : ?host:string -> port:int -> unit -> Unix.file_descr

  (** One request/response exchange on the connection. *)
  val rpc : Unix.file_descr -> Proto.request -> (Proto.response, string) result

  val close : Unix.file_descr -> unit
end
