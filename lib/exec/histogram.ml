(* Fixed-bucket latency histogram for service metrics (p50/p99 job
   latency on the /metrics endpoint).

   Buckets are geometric: [buckets_per_decade] per power of ten between
   [lo] and [hi] seconds, plus one underflow and one overflow bucket.
   The layout is FIXED at creation — observing never allocates, so the
   histogram can sit on the job-completion hot path — and quantiles are
   answered as the UPPER BOUND of the bucket holding the requested rank
   (a conservative estimate, never an underestimate beyond bucket
   granularity).

   Thread-safe: observations arrive from worker domains and connection
   threads concurrently; a single mutex guards the counters (an observe
   is two integer writes, contention is irrelevant next to a job run). *)

type t = {
  bounds : float array; (* upper bound of bucket i; last = infinity *)
  counts : int array;
  mu : Mutex.t;
  mutable total : int;
  mutable sum : float;
  mutable max_seen : float;
}

let create ?(lo = 1e-4) ?(hi = 100.0) ?(buckets_per_decade = 5) () =
  if not (lo > 0.0 && hi > lo) then invalid_arg "Histogram.create: need 0 < lo < hi";
  if buckets_per_decade <= 0 then
    invalid_arg "Histogram.create: buckets_per_decade must be positive";
  let step = 10.0 ** (1.0 /. float_of_int buckets_per_decade) in
  let bounds = ref [ lo ] in
  let b = ref lo in
  while !b < hi do
    b := !b *. step;
    bounds := !b :: !bounds
  done;
  let bounds = Array.of_list (List.rev (infinity :: !bounds)) in
  { bounds; counts = Array.make (Array.length bounds) 0; mu = Mutex.create ();
    total = 0; sum = 0.0; max_seen = 0.0 }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* first bucket whose upper bound admits v (bounds are sorted) *)
let bucket_of t v =
  let n = Array.length t.bounds in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v <= t.bounds.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe t v =
  let v = if Float.is_nan v || v < 0.0 then 0.0 else v in
  let i = bucket_of t v in
  locked t (fun () ->
      t.counts.(i) <- t.counts.(i) + 1;
      t.total <- t.total + 1;
      t.sum <- t.sum +. v;
      if v > t.max_seen then t.max_seen <- v)

let count t = locked t (fun () -> t.total)
let mean t = locked t (fun () -> if t.total = 0 then 0.0 else t.sum /. float_of_int t.total)

(* upper bound of the bucket holding rank ceil(q * total); the overflow
   bucket answers with the largest value ever observed instead of
   infinity *)
let quantile t q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Histogram.quantile: q outside [0,1]";
  locked t (fun () ->
      if t.total = 0 then 0.0
      else begin
        let rank =
          Stdlib.max 1 (int_of_float (ceil (q *. float_of_int t.total)))
        in
        let acc = ref 0 and i = ref 0 in
        let n = Array.length t.counts in
        while !acc < rank && !i < n do
          acc := !acc + t.counts.(!i);
          incr i
        done;
        let b = t.bounds.(!i - 1) in
        if b = infinity then t.max_seen else b
      end)

let reset t =
  locked t (fun () ->
      Array.fill t.counts 0 (Array.length t.counts) 0;
      t.total <- 0;
      t.sum <- 0.0;
      t.max_seen <- 0.0)
