(** Chunked parallel map whose chunk size defaults to the paper's §5
    Kruskal–Weiss formula, fed by an online (Welford) mean/variance
    estimate of the measured per-item cost — the repo scheduling itself
    with the machinery it implements. *)

type strategy =
  | Fixed of int  (** constant chunk size (clamped to [>= 1]) *)
  | Static  (** one chunk per worker, [ceil (N/P)] *)
  | Kruskal_weiss of { h : float }
      (** §5: recompute [k] online from measured per-item mean/σ and the
          remaining item count ([S89_sched.Chunk.kw_chunk]); [h] is the
          assumed per-dispatch overhead in seconds *)
  | Custom of (remaining:int -> workers:int -> mean:float -> sigma:float -> int)
      (** pluggable: called under the pool's statistics lock with the
          current online estimates *)

(** Per-dispatch overhead assumed by [default_strategy] (seconds). *)
val default_dispatch_overhead : float

(** [Kruskal_weiss { h = default_dispatch_overhead }]. *)
val default_strategy : strategy

(** [map ?strategy pool f arr] — like [Pool.map] (input-order results,
    smallest-index exception re-raise, sequential fallback) but workers
    grab chunks of items per dispatch; the chunk size comes from
    [strategy].  Only scheduling adapts to the measured costs — results
    are independent of the chunking. *)
val map : ?strategy:strategy -> Pool.t -> ('a -> 'b) -> 'a array -> 'b array

(** [map] over lists. *)
val map_list : ?strategy:strategy -> Pool.t -> ('a -> 'b) -> 'a list -> 'b list

(** Like {!map} but each item's wall-clock time is measured and items
    exceeding [budget] seconds are reported ([Pool.budget_report],
    ascending index).  Items are never killed — results stay complete
    and deterministic.  Raises [Invalid_argument] when [budget <= 0.]. *)
val map_budgeted :
  ?strategy:strategy ->
  Pool.t ->
  budget:float ->
  ('a -> 'b) ->
  'a array ->
  'b array * Pool.budget_report
