(* Domain-based work pool (OCaml 5 multicore).

   The pool runs pure-ish per-item work in parallel while keeping every
   observable result deterministic:

   - [map]/[mapi]/[fold] return results in INPUT order, whatever the
     scheduling order was, so a parallel run is indistinguishable from a
     sequential one (given per-item determinism — give each item its own
     seed, e.g. via [S89_util.Prng.split]);
   - reductions ([fold]) combine the mapped values sequentially,
     left-to-right, on the calling domain — deterministic reduction order;
   - a worker exception does not abort the other items; after the join,
     the exception of the SMALLEST failing item index is re-raised on the
     caller with its original backtrace (again independent of scheduling);
   - with [domains = 1], or when the host has a single core
     ([Domain.recommended_domain_count () = 1]), [map] degrades to a plain
     sequential loop on the calling domain — no Domain is ever spawned.
     [~force_parallel:true] overrides the single-core fallback so the
     Domain path itself can be exercised (tests, measurements).

   Work distribution is size-1 self-scheduling over a shared atomic index:
   item cost may vary wildly (whole-procedure analyses, seeded simulator
   replications), and per-item dispatch is one [Atomic.fetch_and_add].
   For workloads where that overhead matters, [Chunked.map] batches
   dispatches with the paper's §5 chunk-size formula. *)

module Fault = S89_util.Fault

type t = {
  domains : int; (* worker count used by the parallel path *)
  parallel : bool; (* false: never spawn, run on the calling domain *)
}

let create ?(force_parallel = false) ~domains () =
  if domains <= 0 then invalid_arg "Pool.create: domains must be positive";
  let parallel =
    domains > 1 && (force_parallel || Domain.recommended_domain_count () > 1)
  in
  { domains; parallel }

let domains t = t.domains
let parallel t = t.parallel

(* Apply one item under the active fault spec (no-op when S89_FAULTS is
   unset).  A [Slow_item] decision sleeps; a [Worker_raise] decision
   crashes the attempt, and the pool retries — [Fault.max_retries] extra
   attempts, decisions keyed by (item, attempt) so they are scheduling
   independent — before letting [Fault.Injected] propagate.  Exceptions
   from [f] itself always propagate: the pool is resilient to its own
   injected faults, not to real bugs. *)
let apply_faulty (f : 'a -> 'b) (key : int) (x : 'a) : 'b =
  match Fault.active () with
  | None -> f x
  | Some sp ->
      if Fault.fires sp Fault.Slow_item ~key ~attempt:0 then
        Unix.sleepf (Fault.slow_seconds sp);
      let rec attempt a =
        if Fault.fires sp Fault.Worker_raise ~key ~attempt:a then
          if a >= Fault.max_retries then
            raise (Fault.Injected (Fault.injected_msg Fault.Worker_raise ~key))
          else attempt (a + 1)
        else f x
      in
      attempt 0

(* Run [worker] on [workers] domains including the calling one, join, then
   re-raise the smallest-index captured error, if any. *)
let run_workers ~workers ~(errors : (exn * Printexc.raw_backtrace) option array)
    worker =
  let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
  (* the calling domain participates instead of idling in join *)
  worker ();
  Array.iter Domain.join spawned;
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors

let mapi t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if (not t.parallel) || n = 1 then
    Array.mapi (fun i x -> apply_faulty (f i) i x) arr
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue_ := false
        else
          match apply_faulty (f i) i arr.(i) with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
      done
    in
    run_workers ~workers:(min t.domains n) ~errors worker;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map t f arr = mapi t (fun _ x -> f x) arr

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

let fold t f combine init arr =
  Array.fold_left combine init (map t f arr)

(* ---- per-item wall-clock budgets ---- *)

type budget_report = { over_budget : (int * float) list }

let no_overruns = { over_budget = [] }

let mapi_budgeted t ~budget f arr =
  if budget <= 0.0 then invalid_arg "Pool.mapi_budgeted: budget must be positive";
  let n = Array.length arr in
  let durations = Array.make n 0.0 in
  let g i x =
    let t0 = Unix.gettimeofday () in
    let r = f i x in
    durations.(i) <- Unix.gettimeofday () -. t0;
    r
  in
  let results = mapi t g arr in
  let over = ref [] in
  for i = n - 1 downto 0 do
    if durations.(i) > budget then over := (i, durations.(i)) :: !over
  done;
  (results, { over_budget = !over })

let map_budgeted t ~budget f arr = mapi_budgeted t ~budget (fun _ x -> f x) arr
