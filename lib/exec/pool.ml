(* Domain-based work pool (OCaml 5 multicore).

   The pool runs pure-ish per-item work in parallel while keeping every
   observable result deterministic:

   - [map]/[mapi]/[fold] return results in INPUT order, whatever the
     scheduling order was, so a parallel run is indistinguishable from a
     sequential one (given per-item determinism — give each item its own
     seed, e.g. via [S89_util.Prng.split]);
   - reductions ([fold]) combine the mapped values sequentially,
     left-to-right, on the calling domain — deterministic reduction order;
   - a worker exception does not abort the other items; after the join,
     the exception of the SMALLEST failing item index is re-raised on the
     caller with its original backtrace (again independent of scheduling);
   - with [domains = 1], or when the host has a single core
     ([Domain.recommended_domain_count () = 1]), [map] degrades to a plain
     sequential loop on the calling domain — no Domain is ever spawned.
     [~force_parallel:true] overrides the single-core fallback so the
     Domain path itself can be exercised (tests, measurements).

   Work distribution is size-1 self-scheduling over a shared atomic index:
   item cost may vary wildly (whole-procedure analyses, seeded simulator
   replications), and per-item dispatch is one [Atomic.fetch_and_add].
   For workloads where that overhead matters, [Chunked.map] batches
   dispatches with the paper's §5 chunk-size formula. *)

type t = {
  domains : int; (* worker count used by the parallel path *)
  parallel : bool; (* false: never spawn, run on the calling domain *)
}

let create ?(force_parallel = false) ~domains () =
  if domains <= 0 then invalid_arg "Pool.create: domains must be positive";
  let parallel =
    domains > 1 && (force_parallel || Domain.recommended_domain_count () > 1)
  in
  { domains; parallel }

let domains t = t.domains
let parallel t = t.parallel

(* Run [worker] on [workers] domains including the calling one, join, then
   re-raise the smallest-index captured error, if any. *)
let run_workers ~workers ~(errors : (exn * Printexc.raw_backtrace) option array)
    worker =
  let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
  (* the calling domain participates instead of idling in join *)
  worker ();
  Array.iter Domain.join spawned;
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors

let mapi t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if (not t.parallel) || n = 1 then Array.mapi f arr
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue_ := false
        else
          match f i arr.(i) with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
      done
    in
    run_workers ~workers:(min t.domains n) ~errors worker;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map t f arr = mapi t (fun _ x -> f x) arr

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

let fold t f combine init arr =
  Array.fold_left combine init (map t f arr)
