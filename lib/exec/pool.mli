(** Domain-based work pool with deterministic observable behaviour:
    results in input order, sequential left-to-right reduction, and
    exception re-raise (smallest failing item index, original backtrace)
    independent of scheduling order. *)

type t

(** [create ~domains ()] — a pool whose parallel operations use [domains]
    workers (the calling domain counts as one).  Falls back to a purely
    sequential, no-Domain path when [domains = 1] or the host is
    single-core ([Domain.recommended_domain_count () = 1]);
    [~force_parallel:true] keeps the Domain path on single-core hosts
    (tests, overhead measurements).  Raises [Invalid_argument] for
    [domains <= 0]. *)
val create : ?force_parallel:bool -> domains:int -> unit -> t

(** Worker count the parallel path would use. *)
val domains : t -> int

(** Whether [map] actually spawns domains (false: sequential path). *)
val parallel : t -> bool

(** [map t f arr] — [Array.map f arr], items distributed over the pool by
    size-1 self-scheduling.  Results are in input order; if any item
    raises, all other items still run and the exception of the smallest
    failing index is re-raised with its backtrace. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [map] with the item index. *)
val mapi : t -> (int -> 'a -> 'b) -> 'a array -> 'b array

(** [map] over lists. *)
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** [fold t f combine init arr] maps [f] in parallel, then combines the
    mapped values sequentially left-to-right on the calling domain —
    deterministic reduction order even for non-commutative [combine]. *)
val fold : t -> ('a -> 'b) -> ('acc -> 'b -> 'acc) -> 'acc -> 'a array -> 'acc

(** Which items of a budgeted map ran over their per-item budget:
    [(index, measured seconds)], ascending by index — deterministic
    whatever the scheduling was. *)
type budget_report = { over_budget : (int * float) list }

(** The empty report. *)
val no_overruns : budget_report

(** [map_budgeted t ~budget f arr] — {!map}, but each item's wall-clock
    time is measured and items exceeding [budget] seconds are reported.
    Items are never killed (results stay complete and deterministic);
    the report tells the caller which items to distrust or re-plan.
    Raises [Invalid_argument] when [budget <= 0.]. *)
val map_budgeted :
  t -> budget:float -> ('a -> 'b) -> 'a array -> 'b array * budget_report

(** [map_budgeted] with the item index. *)
val mapi_budgeted :
  t -> budget:float -> (int -> 'a -> 'b) -> 'a array -> 'b array * budget_report

(**/**)

(** Internal plumbing shared with [Chunked]: run [worker] on [workers]
    domains (the calling one included), join, then re-raise the
    smallest-index error captured in [errors]. *)
val run_workers :
  workers:int ->
  errors:(exn * Printexc.raw_backtrace) option array ->
  (unit -> unit) ->
  unit

(** Internal plumbing shared with [Chunked]: apply [f] to one item under
    the active fault spec — sleep on a [Slow_item] decision, retry
    [Worker_raise] decisions up to [Fault.max_retries] before letting
    [Fault.Injected] propagate.  No-op wrapper when [S89_FAULTS] is
    unset. *)
val apply_faulty : ('a -> 'b) -> int -> 'a -> 'b
