(** Domain-based work pool with deterministic observable behaviour:
    results in input order, sequential left-to-right reduction, and
    exception re-raise (smallest failing item index, original backtrace)
    independent of scheduling order. *)

type t

(** [create ~domains ()] — a pool whose parallel operations use [domains]
    workers (the calling domain counts as one).  Falls back to a purely
    sequential, no-Domain path when [domains = 1] or the host is
    single-core ([Domain.recommended_domain_count () = 1]);
    [~force_parallel:true] keeps the Domain path on single-core hosts
    (tests, overhead measurements).  Raises [Invalid_argument] for
    [domains <= 0]. *)
val create : ?force_parallel:bool -> domains:int -> unit -> t

(** Worker count the parallel path would use. *)
val domains : t -> int

(** Whether [map] actually spawns domains (false: sequential path). *)
val parallel : t -> bool

(** [map t f arr] — [Array.map f arr], items distributed over the pool by
    size-1 self-scheduling.  Results are in input order; if any item
    raises, all other items still run and the exception of the smallest
    failing index is re-raised with its backtrace. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [map] with the item index. *)
val mapi : t -> (int -> 'a -> 'b) -> 'a array -> 'b array

(** [map] over lists. *)
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** [fold t f combine init arr] maps [f] in parallel, then combines the
    mapped values sequentially left-to-right on the calling domain —
    deterministic reduction order even for non-commutative [combine]. *)
val fold : t -> ('a -> 'b) -> ('acc -> 'b -> 'acc) -> 'acc -> 'a array -> 'acc

(**/**)

(** Internal plumbing shared with [Chunked]: run [worker] on [workers]
    domains (the calling one included), join, then re-raise the
    smallest-index error captured in [errors]. *)
val run_workers :
  workers:int ->
  errors:(exn * Printexc.raw_backtrace) option array ->
  (unit -> unit) ->
  unit
