(* Supervision over the work pool: restart-with-backoff, circuit
   breaking (with half-open recovery probes), and heartbeat deadlines.

   The pool (PR 3/4) already keeps results deterministic and absorbs its
   own injected faults; this layer adds the service-grade policies on
   top:

   - [protect] runs one keyed piece of work and, on failure, restarts it
     up to [max_restarts] times with exponential backoff.  The backoff
     delays carry DETERMINISTIC jitter: the jitter draws come from the
     same (seed, site, key, attempt) decision stream as fault injection
     ([Fault.uniform] on the [Backoff] site), so a supervised run under
     [S89_FAULTS] replays the exact same schedule every time;
   - a per-key CIRCUIT BREAKER counts protect-level failures (i.e.
     failures that survived all restarts); at [breaker_threshold] the
     key's circuit opens and further work for it fails fast with
     [Circuit_open] instead of burning retries.  An open circuit stays
     open for [cooldown] seconds (infinite by default — the pre-PR-9
     behavior), after which the next [protect] call is admitted as a
     single HALF-OPEN probe: one attempt, no restarts.  A successful
     probe closes the circuit ([Closed] event); a failed probe re-opens
     it for another cooldown window.  At most one probe is in flight per
     key, so a thundering herd of tenants cannot stampede a recovering
     resource.  The pipeline maps an open circuit to its ANA003
     opaque-callee degradation path, a resumed batch pre-trips the keys
     its journal recorded as failed, and the TCP service keys breakers
     by TENANT so load-shedding is per tenant, never global;
   - [map] is a heartbeat-supervised [Pool.mapi]: every item stamps a
     heartbeat when it starts and the monitor domain reports items still
     running past [heartbeat_deadline] as wedged.  OCaml domains cannot
     be killed, so a wedged item is REPORTED (and bounded by the VM's
     fuel/cycle guards, which guarantee eventual termination) rather
     than cancelled; faulted items are restarted via [protect].

   Events are plain variants (no diagnostics dependency); service layers
   convert them to SRV diagnostics at their boundary.  All breaker state
   transitions are mutex-guarded: trips may arrive concurrently from
   worker domains serving different tenants. *)

module Fault = S89_util.Fault

type policy = {
  max_restarts : int;
  base_backoff : float;
  max_backoff : float;
  jitter : float;
  breaker_threshold : int;
  cooldown : float;
  heartbeat_deadline : float;
  seed : int;
}

let default_policy =
  { max_restarts = 2; base_backoff = 0.001; max_backoff = 0.05; jitter = 0.1;
    breaker_threshold = 3; cooldown = infinity; heartbeat_deadline = 1.0;
    seed = 1 }

type event =
  | Restarted of { key : string; attempt : int; delay : float; error : string }
  | Tripped of { key : string; failures : int }
  | Rejected_open of { key : string }
  | Half_opened of { key : string }
  | Closed of { key : string }
  | Wedged of { index : int; seconds : float }

type breaker_state =
  | Breaker_closed
  | Breaker_open of { remaining : float }
  | Breaker_half_open

exception Circuit_open of string

type t = {
  policy : policy;
  on_event : event -> unit;
  clock : unit -> float;
  mu : Mutex.t;
  failures : (string, int) Hashtbl.t; (* consecutive protect-level failures *)
  tripped : (string, float) Hashtbl.t; (* key -> opened_at (clock time) *)
  probing : (string, unit) Hashtbl.t; (* keys with a half-open probe in flight *)
}

let create ?(policy = default_policy) ?(on_event = fun _ -> ())
    ?(clock = Unix.gettimeofday) () =
  if policy.max_restarts < 0 then
    invalid_arg "Supervise.create: max_restarts must be >= 0";
  if policy.breaker_threshold <= 0 then
    invalid_arg "Supervise.create: breaker_threshold must be positive";
  if not (policy.cooldown >= 0.0) then
    invalid_arg "Supervise.create: cooldown must be non-negative";
  { policy; on_event; clock; mu = Mutex.create (); failures = Hashtbl.create 16;
    tripped = Hashtbl.create 16; probing = Hashtbl.create 16 }

let policy t = t.policy

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* the jitter stream: the active S89_FAULTS spec if any (so chaos runs
   replay their schedules), else a spec synthesized from the policy seed *)
let jitter_spec policy =
  match Fault.active () with Some sp -> sp | None -> Fault.with_seed policy.seed

let backoff_schedule policy ~key =
  let sp = jitter_spec policy in
  List.init policy.max_restarts (fun attempt ->
      let base = policy.base_backoff *. (2.0 ** float_of_int attempt) in
      let d = Float.min policy.max_backoff base in
      d *. (1.0 +. policy.jitter *. Fault.uniform sp Fault.Backoff ~key ~attempt))

let breaker_open t ~key = locked t (fun () -> Hashtbl.mem t.tripped key)

let breaker_state t ~key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tripped key with
      | None -> Breaker_closed
      | Some opened_at ->
          let age = t.clock () -. opened_at in
          if age >= t.policy.cooldown then Breaker_half_open
          else Breaker_open { remaining = t.policy.cooldown -. age })

let trip t ~key =
  locked t (fun () ->
      Hashtbl.replace t.failures key t.policy.breaker_threshold;
      Hashtbl.replace t.tripped key (t.clock ()))

let failure_count t ~key =
  locked t (fun () -> Option.value ~default:0 (Hashtbl.find_opt t.failures key))

(* a success closes the key's accounting; a failure bumps it and may trip
   the breaker — the [Tripped] event fires exactly once per opening *)
let record t ~key ok =
  let tripped_now =
    locked t (fun () ->
        if ok then begin
          Hashtbl.remove t.failures key;
          Hashtbl.remove t.tripped key;
          None
        end
        else begin
          let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.failures key) in
          Hashtbl.replace t.failures key n;
          if n >= t.policy.breaker_threshold && not (Hashtbl.mem t.tripped key)
          then begin
            Hashtbl.replace t.tripped key (t.clock ());
            Some n
          end
          else None
        end)
  in
  match tripped_now with
  | Some n -> t.on_event (Tripped { key; failures = n })
  | None -> ()

(* gate decision for one protect call, under the lock: an open circuit
   either rejects, or — once [cooldown] has elapsed and no other probe
   is in flight — admits exactly one half-open probe *)
let gate t ~key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tripped key with
      | None -> `Run
      | Some opened_at ->
          if
            t.clock () -. opened_at >= t.policy.cooldown
            && not (Hashtbl.mem t.probing key)
          then begin
            Hashtbl.replace t.probing key ();
            `Probe
          end
          else `Reject)

let close_after_probe t ~key =
  locked t (fun () ->
      Hashtbl.remove t.probing key;
      Hashtbl.remove t.failures key;
      Hashtbl.remove t.tripped key);
  t.on_event (Closed { key })

let reopen_after_probe t ~key =
  locked t (fun () ->
      Hashtbl.remove t.probing key;
      Hashtbl.replace t.failures key
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.failures key));
      Hashtbl.replace t.tripped key (t.clock ()))

let protect t ~key f =
  match gate t ~key with
  | `Reject ->
      t.on_event (Rejected_open { key });
      raise (Circuit_open key)
  | `Probe -> (
      (* single attempt, no restarts: a failing probe must not burn the
         full retry schedule against a resource that is still down *)
      t.on_event (Half_opened { key });
      match f () with
      | v ->
          close_after_probe t ~key;
          v
      | exception e ->
          reopen_after_probe t ~key;
          raise e)
  | `Run ->
      let schedule = backoff_schedule t.policy ~key:(Fault.string_key key) in
      let rec go attempt delays =
        match f () with
        | v ->
            record t ~key true;
            v
        (* a malformed fault spec is a configuration error, never a
           transient worker failure: restarting it would loop on the same
           [Bad_spec] and hide the typo *)
        | exception (Fault.Bad_spec _ as e) -> raise e
        | exception e -> (
            match delays with
            | delay :: rest ->
                t.on_event
                  (Restarted { key; attempt; delay; error = Printexc.to_string e });
                if delay > 0.0 then Unix.sleepf delay;
                go (attempt + 1) rest
            | [] ->
                record t ~key false;
                raise e)
      in
      go 0 schedule

(* ---------------- heartbeats ---------------- *)

module Heartbeat = struct
  (* per-item start stamp; nan = not running.  Written by worker domains,
     read by the monitor — [Atomic.t] makes the publication well-defined. *)
  type hb = float Atomic.t array

  let create n = Array.init n (fun _ -> Atomic.make Float.nan)
  let start (hb : hb) i now = Atomic.set hb.(i) now
  let stop (hb : hb) i = Atomic.set hb.(i) Float.nan

  let stale (hb : hb) ~now ~deadline =
    let out = ref [] in
    for i = Array.length hb - 1 downto 0 do
      let t0 = Atomic.get hb.(i) in
      if (not (Float.is_nan t0)) && now -. t0 > deadline then
        out := (i, now -. t0) :: !out
    done;
    !out
end

type wedged_report = (int * float) list

let map t pool f arr =
  let n = Array.length arr in
  let hb = Heartbeat.create n in
  (* max observed overrun per item; written only by the monitor domain,
     read after its join *)
  let overrun = Array.make n 0.0 in
  let finished = Atomic.make false in
  let monitor =
    Domain.spawn (fun () ->
        let deadline = t.policy.heartbeat_deadline in
        let tick = Float.min 0.01 (Float.max 1e-4 (deadline /. 4.0)) in
        while not (Atomic.get finished) do
          Unix.sleepf tick;
          let now = Unix.gettimeofday () in
          List.iter
            (fun (i, age) ->
              let over = age -. deadline in
              if over > overrun.(i) then overrun.(i) <- over)
            (Heartbeat.stale hb ~now ~deadline)
        done)
  in
  let g i x =
    Heartbeat.start hb i (Unix.gettimeofday ());
    Fun.protect
      ~finally:(fun () -> Heartbeat.stop hb i)
      (fun () -> protect t ~key:(string_of_int i) (fun () -> f i x))
  in
  let results =
    Fun.protect
      ~finally:(fun () ->
        Atomic.set finished true;
        Domain.join monitor)
      (fun () -> Pool.mapi pool g arr)
  in
  let wedged = ref [] in
  for i = n - 1 downto 0 do
    if overrun.(i) > 0.0 then wedged := (i, overrun.(i)) :: !wedged
  done;
  List.iter (fun (index, seconds) -> t.on_event (Wedged { index; seconds })) !wedged;
  (results, !wedged)
