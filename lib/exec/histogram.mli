(** Fixed-bucket (geometric) latency histogram for service metrics.
    Observing never allocates; quantiles answer with the upper bound of
    the bucket holding the requested rank (conservative within one
    bucket's width).  Thread-safe — observations may arrive from worker
    domains and connection threads concurrently. *)

type t

(** [buckets_per_decade] geometric buckets per power of ten between
    [lo] and [hi] seconds (defaults [1e-4 .. 100]), plus underflow and
    overflow buckets.  Raises [Invalid_argument] unless
    [0 < lo < hi] and [buckets_per_decade > 0]. *)
val create : ?lo:float -> ?hi:float -> ?buckets_per_decade:int -> unit -> t

(** Record one latency (seconds; NaN and negatives clamp to 0). *)
val observe : t -> float -> unit

val count : t -> int
val mean : t -> float

(** [quantile t q] — upper bound of the bucket containing rank
    [ceil (q * count)]; the overflow bucket answers with the largest
    value ever observed.  [0.0] when empty.  Raises [Invalid_argument]
    for [q] outside [0, 1]. *)
val quantile : t -> float -> float

val reset : t -> unit
