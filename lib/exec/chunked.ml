(* Chunked parallel map: the repo eating its own dog food.

   [Pool.map] dispatches items one at a time; when items are cheap, the
   per-dispatch cost (an atomic fetch-and-add plus cache traffic) is the
   overhead [h] of the paper's §5 trade-off, and the right chunk size is
   exactly the Kruskal–Weiss choice the estimator computes for parallel
   loops:

       k_opt = ( √2 · N · h / (σ · P · √(ln P)) )^(2/3)

   The default strategy measures per-item wall time online (Welford, via
   [S89_util.Stats]), and periodically recomputes k from the current
   mean/σ estimate and the remaining item count using
   [S89_sched.Chunk.kw_chunk] — the very formula §5 derives from the
   profiler's TIME/VAR.  Workers start at chunk size 1 (calibration =
   pure self-scheduling), so the first samples exist before the formula
   is consulted.

   Only scheduling adapts; results stay deterministic: they are written
   by item index, exceptions re-raise smallest-index-first, exactly as in
   [Pool.map]. *)

module Stats = S89_util.Stats
module Chunk = S89_sched.Chunk

type strategy =
  | Fixed of int (* constant chunk size (clamped to >= 1) *)
  | Static (* ceil(N/P): one chunk per worker *)
  | Kruskal_weiss of { h : float } (* §5: k from online mean/sigma; h = seconds/dispatch *)
  | Custom of (remaining:int -> workers:int -> mean:float -> sigma:float -> int)

(* one pool dispatch is roughly an atomic RMW + closure call + a little
   cache traffic; a few microseconds is the right order of magnitude *)
let default_dispatch_overhead = 5e-6

let default_strategy = Kruskal_weiss { h = default_dispatch_overhead }

let adaptive = function
  | Fixed _ | Static -> false
  | Kruskal_weiss _ | Custom _ -> true

let map ?(strategy = default_strategy) (pool : Pool.t) f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if (not (Pool.parallel pool)) || n = 1 then
    Array.mapi (fun i x -> Pool.apply_faulty f i x) arr
  else begin
    let workers = min (Pool.domains pool) n in
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let chunk =
      Atomic.make
        (match strategy with
        | Fixed k -> max 1 k
        | Static -> (n + workers - 1) / workers
        | Kruskal_weiss _ | Custom _ -> 1 (* calibration: self-scheduling *))
    in
    let lock = Mutex.create () in
    let stats = Stats.create () in
    (* don't trust mean/sigma before every worker has reported something *)
    let calibration = 2 * workers in
    let recompute () =
      (* called under [lock] *)
      let remaining = n - min n (Atomic.get next) in
      if Stats.count stats >= calibration && remaining > 0 then begin
        let mean = Stats.mean stats and sigma = Stats.std_dev stats in
        let k =
          match strategy with
          | Kruskal_weiss { h } ->
              if sigma <= 0.0 then Chunk.static_chunk ~n:remaining ~p:workers
              else Chunk.kw_chunk ~n:remaining ~p:workers ~h ~sigma
          | Custom g -> g ~remaining ~workers ~mean ~sigma
          | Fixed _ | Static -> Atomic.get chunk
        in
        Atomic.set chunk (max 1 k)
      end
    in
    let adapt = adaptive strategy in
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        let k = Atomic.get chunk in
        let start = Atomic.fetch_and_add next k in
        if start >= n then continue_ := false
        else begin
          let stop = min n (start + k) in
          if adapt then begin
            (* time each item individually so sigma reflects per-item
               variation, not per-chunk averages *)
            let costs = Array.make (stop - start) 0.0 in
            for i = start to stop - 1 do
              let t0 = Unix.gettimeofday () in
              (match Pool.apply_faulty f i arr.(i) with
              | v -> results.(i) <- Some v
              | exception e ->
                  errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
              costs.(i - start) <- Unix.gettimeofday () -. t0
            done;
            Mutex.protect lock (fun () ->
                Array.iter (Stats.add stats) costs;
                recompute ())
          end
          else
            for i = start to stop - 1 do
              match Pool.apply_faulty f i arr.(i) with
              | v -> results.(i) <- Some v
              | exception e ->
                  errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
            done
        end
      done
    in
    Pool.run_workers ~workers ~errors worker;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list ?strategy pool f xs =
  Array.to_list (map ?strategy pool f (Array.of_list xs))

(* budgeted variant: the chunk scheduling is unchanged; each item's wall
   time is (re)measured by the wrapper and overruns reported by index *)
let map_budgeted ?strategy pool ~budget f arr =
  if budget <= 0.0 then invalid_arg "Chunked.map_budgeted: budget must be positive";
  let n = Array.length arr in
  let durations = Array.make n 0.0 in
  let indexed = Array.mapi (fun i x -> (i, x)) arr in
  let g (i, x) =
    let t0 = Unix.gettimeofday () in
    let r = f x in
    durations.(i) <- Unix.gettimeofday () -. t0;
    r
  in
  let results = map ?strategy pool g indexed in
  let over = ref [] in
  for i = n - 1 downto 0 do
    if durations.(i) > budget then over := (i, durations.(i)) :: !over
  done;
  (results, { Pool.over_budget = !over })
