(** Supervision over the work pool: restart-with-backoff (deterministic
    jitter from the {!S89_util.Fault} decision stream), a per-key circuit
    breaker with half-open recovery probes, and heartbeat deadlines that
    report wedged items.  Events are plain variants; service layers
    convert them to SRV diagnostics at their boundary. *)

type policy = {
  max_restarts : int;  (** restarts granted beyond the first attempt *)
  base_backoff : float;  (** seconds before restart 0; doubles per restart *)
  max_backoff : float;  (** backoff ceiling, seconds *)
  jitter : float;  (** fractional jitter, e.g. [0.1] = up to +10% *)
  breaker_threshold : int;
      (** consecutive protect-level failures before a key's circuit opens *)
  cooldown : float;
      (** seconds an open circuit stays open before a single half-open
          probe is admitted; [infinity] (the default) = open circuits
          never recover, the pre-PR-9 behavior *)
  heartbeat_deadline : float;
      (** seconds an item may run without finishing before it is
          reported as wedged *)
  seed : int;  (** jitter stream seed when no [S89_FAULTS] spec is active *)
}

(** 2 restarts, 1ms base / 50ms max backoff, 10% jitter, breaker at 3,
    infinite cooldown, 1s heartbeat deadline. *)
val default_policy : policy

type event =
  | Restarted of { key : string; attempt : int; delay : float; error : string }
      (** a keyed piece of work failed and will be retried after [delay] *)
  | Tripped of { key : string; failures : int }
      (** the key's circuit opened (fires once per opening) *)
  | Rejected_open of { key : string }
      (** work was rejected because the key's circuit is open *)
  | Half_opened of { key : string }
      (** cooldown elapsed; this call runs as the key's recovery probe *)
  | Closed of { key : string }
      (** a half-open probe succeeded; the key's circuit closed *)
  | Wedged of { index : int; seconds : float }
      (** a {!map} item ran [seconds] past the heartbeat deadline *)

(** Answer of {!breaker_state} — the submit-time view of a key's
    circuit.  [Breaker_half_open] means cooldown has elapsed and the
    next {!protect} call will run as the recovery probe. *)
type breaker_state =
  | Breaker_closed
  | Breaker_open of { remaining : float }  (** seconds of cooldown left *)
  | Breaker_half_open

(** Raised by {!protect} (without running the work) when the key's
    circuit is open. *)
exception Circuit_open of string

type t

(** Raises [Invalid_argument] for a negative [max_restarts], a
    non-positive [breaker_threshold], or a negative/NaN [cooldown].
    [clock] (default [Unix.gettimeofday]) drives cooldown timing — tests
    inject a fake clock to step breaker transitions deterministically. *)
val create :
  ?policy:policy ->
  ?on_event:(event -> unit) ->
  ?clock:(unit -> float) ->
  unit ->
  t

val policy : t -> policy

(** The deterministic backoff schedule for a key: delay of restart [a] is
    [min max_backoff (base_backoff · 2{^a}) · (1 + jitter · u)] with [u]
    drawn from the (seed, Backoff, key, a) fault decision stream — the
    active [S89_FAULTS] spec's seed if one is set, else [policy.seed].
    Pure: same policy, same spec, same key ⟹ same schedule. *)
val backoff_schedule : policy -> key:int -> float list

(** [protect t ~key f] — run [f], restarting it per the backoff schedule
    on exceptions ([Fault.Bad_spec] excepted: configuration errors are
    never retried).  A failure that survives all restarts is recorded
    against [key]'s breaker and re-raised; a success resets the key.
    Raises {!Circuit_open} immediately when the key's circuit is open.
    Once [policy.cooldown] has elapsed on an open circuit, exactly one
    call is admitted as a half-open probe (single attempt, no restarts):
    success closes the circuit, failure re-opens it for another cooldown
    window; concurrent calls during the probe are still rejected. *)
val protect : t -> key:string -> (unit -> 'a) -> 'a

(** Open [key]'s circuit without running anything — used by a resumed
    batch to pre-trip the procedures its journal recorded as failed. *)
val trip : t -> key:string -> unit

val breaker_open : t -> key:string -> bool

(** The key's circuit as of now (per the supervisor's clock). *)
val breaker_state : t -> key:string -> breaker_state

(** Consecutive recorded failures for a key (0 after a success). *)
val failure_count : t -> key:string -> int

(** Items of a supervised {!map} that ran past the heartbeat deadline:
    [(index, seconds over deadline)], ascending by index. *)
type wedged_report = (int * float) list

(** [map t pool f arr] — heartbeat-supervised [Pool.mapi]: each item is
    wrapped in {!protect} (keyed by its index) and stamps heartbeats a
    monitor domain watches; items still running past
    [policy.heartbeat_deadline] are reported as wedged (domains cannot be
    killed — pair with the VM's fuel/cycle guards for termination).
    Results stay input-ordered and deterministic; the wedged report is
    timing-dependent and advisory. *)
val map : t -> Pool.t -> (int -> 'a -> 'b) -> 'a array -> 'b array * wedged_report
