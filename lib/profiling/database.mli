(** Program database (the PTRAN-style store): accumulates [TOTAL_FREQ]
    sums over multiple executions — frequencies only ever enter the
    estimator as ratios, so sums work directly (§3). *)

type cond = Analysis.cond

type t = {
  mutable runs : int;
  sums : (string * cond, int) Hashtbl.t;
}

val create : unit -> t

(** Number of accumulated runs. *)
val runs : t -> int

(** Fold one run's (or one reconstruction's) per-procedure totals in. *)
val accumulate : t -> (string, (cond, int) Hashtbl.t) Hashtbl.t -> unit

(** Accumulated totals of one procedure, ready for {!Freq.compute}. *)
val proc_totals : t -> string -> (cond, int) Hashtbl.t

(** Add [b]'s runs and sums into [a]. *)
val merge : into:t -> t -> unit

(** A database file could not be loaded: [line] is the 1-based offending
    line (0 = the file itself, e.g. unreadable or empty). *)
exception Load_error of { line : int; msg : string }

(** Write the line-oriented text format: a [s89-profile-db 2] magic line,
    a [run-count N] line, one [total <proc> <node> <label> <sum>] line
    per condition, and a trailing [checksum] line (FNV-1a/64 of all
    preceding bytes) that lets {!load} detect truncation/corruption. *)
val save : t -> string -> unit

(** The exact byte image {!save} writes (checksum line included) —
    deterministic ([total] rows sorted), used by the WAL store as its
    snapshot encoding. *)
val to_string : t -> string

(** Parse one database label token ({!S89_cfg.Label.to_string} form) —
    shared with the WAL store's record rows. *)
val label_of_string : string -> S89_cfg.Label.t option

(** FNV-1a/64 of a string, as used by the trailing [checksum] line. *)
val fnv64 : string -> int64

(** Load a database written by {!save} (or the header-less version-1
    format, which has no checksum).  Raises {!Load_error} on unreadable,
    truncated, corrupt or malformed input; [~repair:true] never raises on
    malformed content — the valid prefix rows are kept and the rest
    dropped. *)
val load : ?repair:bool -> string -> t
