(** Per-procedure analysis bundle (ECFG + CDG + FCDG) and the mapping from
    control conditions to the physical measurements that realize them. *)

module Ir = S89_frontend.Ir
module Program = S89_frontend.Program
open S89_cfg
open S89_cdg

(** A control condition [(u, l)] of the FCDG (paper §3). *)
type cond = int * Label.t

(** How a condition's [TOTAL_FREQ] is observable at run time. *)
type site =
  | Edge_site of int * Label.t  (** an original CFG edge [(src, label)] *)
  | Node_site of int  (** executions of an original node (headers, exits) *)
  | Invocation_site  (** procedure entry — the [(START, U)] condition *)
  | Never  (** pseudo conditions: always zero *)

type t = {
  proc : Program.proc;
  ecfg : Ir.info Ecfg.t;
  cdg : Control_dep.t;
  fcdg : Fcdg.t;
  conditions : cond list;  (** all FCDG control conditions *)
}

(** Payload given to synthetic ECFG nodes. *)
val synthetic_info : Ir.info

(** The procedure violates an analysis precondition (invalid or
    irreducible CFG) — raised by {!of_proc} instead of failing deep
    inside interval analysis. *)
exception Unanalyzable of { proc : string; reason : string }

(** Analyze one procedure (ECFG, CDG, FCDG).
    @raise Unanalyzable on an invalid or irreducible CFG
    @raise S89_util.Fault.Injected under [S89_FAULTS=analysis_raise:P] *)
val of_proc : Program.proc -> t

(** Analyze every procedure of a program, keyed by name.  [?pool] runs
    the per-procedure ECFG→CDG→FCDG pipelines on separate domains; the
    result is identical to the sequential one. *)
val of_program : ?pool:S89_exec.Pool.t -> Program.t -> (string, t) Hashtbl.t

(** Classify a condition into its measurement site. *)
val site_of_condition : t -> cond -> site

(** A condition's exact [TOTAL_FREQ] from a VM run's oracle counts. *)
val oracle_total : t -> S89_vm.Interp.t -> cond -> int

(** All conditions with their oracle totals. *)
val oracle_totals : t -> S89_vm.Interp.t -> (cond, int) Hashtbl.t

(** Headers of exit-free DO loops (no branch in the body leaves the
    interval) — the targets of §3's third optimization. *)
val exit_free_do_headers : t -> int list

(** The DO metadata of a header node, if it is a lowered DO loop. *)
val do_meta : t -> int -> Ir.do_meta option

(** Original-CFG entry edges of a loop (the edges the ECFG redirected to
    the preheader); bulk probes attach here. *)
val entry_edges : t -> int -> Label.t S89_graph.Digraph.edge list
