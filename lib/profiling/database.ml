(* Program database (the PTRAN-style store of §1/§3): accumulates
   TOTAL_FREQ values over multiple executions — "it is a good idea to
   accumulate the TOTAL_FREQ values (as a sum ...) from different program
   executions in the program database, so as to get a more representative
   set of frequency values."

   On-disk format (version 2): a line-oriented text file,
       s89-profile-db 2
       run-count N
       total <proc> <node> <label> <sum>
       checksum <16 hex digits>
   which keeps the database human-inspectable and trivially mergeable.
   The trailing checksum (FNV-1a/64 of every byte before it) detects
   truncated or bit-flipped files at load time.  Header-less version-1
   files (no magic, no checksum) are still read. *)

open S89_cfg
module Fault = S89_util.Fault

type cond = Analysis.cond

type t = {
  mutable runs : int;
  sums : (string * cond, int) Hashtbl.t;
}

let create () = { runs = 0; sums = Hashtbl.create 64 }

let runs t = t.runs

(* fold one run's per-procedure totals into the database *)
let accumulate t (per_proc : (string, (cond, int) Hashtbl.t) Hashtbl.t) =
  t.runs <- t.runs + 1;
  Hashtbl.iter
    (fun proc tbl ->
      Hashtbl.iter
        (fun cond v ->
          let key = (proc, cond) in
          let prev = match Hashtbl.find_opt t.sums key with Some p -> p | None -> 0 in
          Hashtbl.replace t.sums key (prev + v))
        tbl)
    per_proc

(* accumulated totals of one procedure, for feeding Freq.compute; since
   FREQ only uses ratios, sums over runs work directly (§3).  Entries are
   inserted in sorted key order so the result's iteration order does not
   depend on how [t.sums] was populated (snapshot replay vs live
   accumulation) — byte-identical estimates across resumes rely on it. *)
let proc_totals t proc : (cond, int) Hashtbl.t =
  let entries =
    Hashtbl.fold
      (fun (p, cond) v acc -> if p = proc then (cond, v) :: acc else acc)
      t.sums []
    |> List.sort compare
  in
  let out = Hashtbl.create 64 in
  List.iter (fun (cond, v) -> Hashtbl.replace out cond v) entries;
  out

let merge ~into:(a : t) (b : t) =
  a.runs <- a.runs + b.runs;
  Hashtbl.iter
    (fun key v ->
      let prev = match Hashtbl.find_opt a.sums key with Some p -> p | None -> 0 in
      Hashtbl.replace a.sums key (prev + v))
    b.sums

(* ---------------- (de)serialization ---------------- *)

exception Load_error of { line : int; msg : string }

let magic = "s89-profile-db"
let format_version = 2

(* FNV-1a/64 over a string; printed as 16 hex digits *)
let fnv64 (s : string) : int64 =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let label_to_db = Label.to_string

let label_of_string s : Label.t option =
  match s with
  | "T" -> Some Label.T
  | "F" -> Some Label.F
  | "U" -> Some Label.U
  | _ ->
      let tagged tag mk =
        if String.length s >= 2 && s.[0] = tag then
          Option.map mk (int_of_string_opt (String.sub s 1 (String.length s - 1)))
        else None
      in
      (match tagged 'C' (fun i -> Label.Case i) with
      | Some _ as r -> r
      | None -> tagged 'Z' (fun i -> Label.Pseudo i))

(* the full v2 file image, checksum line included — [save] writes exactly
   this, and the WAL store uses it as its atomic snapshot encoding *)
let to_string t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "%s %d\n" magic format_version;
  Printf.bprintf buf "run-count %d\n" t.runs;
  let entries =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.sums [] |> List.sort compare
  in
  List.iter
    (fun ((proc, (node, label)), v) ->
      Printf.bprintf buf "total %s %d %s %d\n" proc node (label_to_db label) v)
    entries;
  let body = Buffer.contents buf in
  body ^ Printf.sprintf "checksum %016Lx\n" (fnv64 body)

let save t path =
  let full = to_string t in
  (* fault injection: simulate a writer dying mid-write (the checksum is
     what lets [load] catch the resulting half-file) *)
  let full =
    match Fault.active () with
    | Some sp
      when Fault.fires sp Fault.Db_truncate ~key:(Fault.string_key path) ~attempt:0
      ->
        String.sub full 0 (String.length full / 2)
    | _ -> full
  in
  let oc = open_out path in
  output_string oc full;
  close_out oc

(* Parse one content row into [t]; [Error (line, msg)] on a bad row. *)
let parse_row t lineno line : (unit, int * string) result =
  match String.split_on_char ' ' (String.trim line) with
  | [ "run-count"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 0 ->
          t.runs <- n;
          Ok ()
      | _ -> Error (lineno, "bad run-count: " ^ n))
  | [ "total"; proc; node; label; v ] -> (
      match (int_of_string_opt node, label_of_string label, int_of_string_opt v) with
      | Some node, Some label, Some v ->
          Hashtbl.replace t.sums (proc, (node, label)) v;
          Ok ()
      | _ -> Error (lineno, "bad total row: " ^ line))
  | [] | [ "" ] -> Ok ()
  | _ -> Error (lineno, "unrecognized line: " ^ line)

let load ?(repair = false) path =
  let ic =
    try open_in path with Sys_error msg -> raise (Load_error { line = 0; msg })
  in
  let lines =
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let acc = ref [] in
    (try
       while true do
         acc := input_line ic :: !acc
       done
     with End_of_file -> ());
    List.rev !acc
  in
  let t = create () in
  (* parse rows in order, stopping at the first problem; under
     [~repair:true] the rows parsed before the problem (the valid
     prefix) are kept, otherwise the problem becomes a [Load_error] *)
  let finish : (unit, int * string) result -> t = function
    | Ok () -> t
    | Error (line, msg) -> if repair then t else raise (Load_error { line; msg })
  in
  match lines with
  | [] ->
      if repair then t else raise (Load_error { line = 0; msg = "empty database file" })
  | first :: rest -> (
      let header =
        match String.split_on_char ' ' (String.trim first) with
        | [ m; v ] when m = magic -> (
            match int_of_string_opt v with
            | Some n when n = format_version -> Ok true
            | Some n ->
                Error (1, Printf.sprintf "unsupported database format version %d" n)
            | None -> Error (1, "bad database format version: " ^ v))
        | _ -> Ok false (* header-less version 1 *)
      in
      match header with
      | Error _ as e -> finish (e :> (unit, int * string) result)
      | Ok false ->
          (* version 1: no checksum to verify *)
          let rec go lineno = function
            | [] -> Ok ()
            | line :: rest -> (
                match parse_row t lineno line with
                | Ok () -> go (lineno + 1) rest
                | Error _ as e -> e)
          in
          finish (go 1 lines)
      | Ok true ->
          let body = Buffer.create 256 in
          Buffer.add_string body first;
          Buffer.add_char body '\n';
          let rec go lineno = function
            | [] -> Error (lineno - 1, "missing checksum (truncated file?)")
            | line :: rest -> (
                match String.split_on_char ' ' (String.trim line) with
                | [ "checksum"; hex ] ->
                    if List.exists (fun l -> String.trim l <> "") rest then
                      Error (lineno + 1, "content after the checksum line")
                    else
                      let expect =
                        Printf.sprintf "%016Lx" (fnv64 (Buffer.contents body))
                      in
                      if String.lowercase_ascii hex = expect then Ok ()
                      else Error (lineno, "checksum mismatch (corrupt database?)")
                | _ -> (
                    match parse_row t lineno line with
                    | Ok () ->
                        Buffer.add_string body line;
                        Buffer.add_char body '\n';
                        go (lineno + 1) rest
                    | Error _ as e -> e))
          in
          finish (go 2 rest))
