(* Feedback profiles: the PGO loop's on-disk interchange format.

   A feedback file carries the per-procedure node frequencies of one
   profiled run, keyed by an FNV-1a fingerprint of the exact source text
   it was collected from.  Frequencies index CFG nodes positionally, so
   feeding a profile of program A into a reoptimization of program B
   would silently misattribute every count — the fingerprint check makes
   that a structured PGO001 error instead (same identity discipline as
   the batch store's DB004 check).

   Format (line-oriented, checksummed like the profile database):

     s89-feedback 1
     source-fnv <16 hex digits>
     seed <int>
     proc <name> <n> <e0> ... <e(n-1)>
     ...
     checksum <16 hex digits>
*)

module Diag = S89_diag.Diag

type t = {
  fingerprint : string;  (* FNV-1a/64 of the source text, 16 hex digits *)
  seed : int;
  freq : (string * int array) list;
}

exception Load_error of { line : int; msg : string }

let magic = "s89-feedback"
let format_version = 1
let fingerprint_of_source source = Printf.sprintf "%016Lx" (Database.fnv64 source)

let make ~source ~seed freq = { fingerprint = fingerprint_of_source source; seed; freq }

let check t ~source : (unit, Diag.t) result =
  let got = fingerprint_of_source source in
  if String.equal t.fingerprint got then Ok ()
  else
    Error
      (Diag.errorf ~code:"PGO001"
         ~hint:"re-profile with 'ptranc pgo --profile-out' on this exact source"
         "feedback profile fingerprint %s does not match program %s: node \
          frequencies index CFG nodes positionally and cannot be applied \
          across source changes"
         t.fingerprint got)

let to_string t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "%s %d\n" magic format_version;
  Printf.bprintf buf "source-fnv %s\n" t.fingerprint;
  Printf.bprintf buf "seed %d\n" t.seed;
  List.iter
    (fun (name, execs) ->
      Printf.bprintf buf "proc %s %d" name (Array.length execs);
      Array.iter (fun e -> Printf.bprintf buf " %d" e) execs;
      Buffer.add_char buf '\n')
    t.freq;
  let body = Buffer.contents buf in
  body ^ Printf.sprintf "checksum %016Lx\n" (Database.fnv64 body)

let save t path =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let of_string (s : string) : t =
  let err line msg = raise (Load_error { line; msg }) in
  let lines = String.split_on_char '\n' s in
  let fingerprint = ref "" and seed = ref 0 and freq = ref [] in
  let body = Buffer.create 256 in
  let seen_checksum = ref false in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let row = String.trim line in
      if !seen_checksum then begin
        if row <> "" then err lineno "content after the checksum line"
      end
      else
        match String.split_on_char ' ' row with
        | [ m; v ] when m = magic ->
            if int_of_string_opt v <> Some format_version then
              err lineno ("unsupported feedback format version: " ^ v);
            Buffer.add_string body line;
            Buffer.add_char body '\n'
        | [ "source-fnv"; hex ] ->
            fingerprint := String.lowercase_ascii hex;
            Buffer.add_string body line;
            Buffer.add_char body '\n'
        | [ "seed"; n ] -> (
            match int_of_string_opt n with
            | Some n ->
                seed := n;
                Buffer.add_string body line;
                Buffer.add_char body '\n'
            | None -> err lineno ("bad seed: " ^ n))
        | "proc" :: name :: n :: counts -> (
            match int_of_string_opt n with
            | Some n when n >= 0 && List.length counts = n ->
                let execs =
                  Array.of_list
                    (List.map
                       (fun c ->
                         match int_of_string_opt c with
                         | Some v when v >= 0 -> v
                         | _ -> err lineno ("bad count: " ^ c))
                       counts)
                in
                freq := (name, execs) :: !freq;
                Buffer.add_string body line;
                Buffer.add_char body '\n'
            | _ -> err lineno ("bad proc row: " ^ row))
        | [ "checksum"; hex ] ->
            seen_checksum := true;
            let expect =
              Printf.sprintf "%016Lx" (Database.fnv64 (Buffer.contents body))
            in
            if String.lowercase_ascii hex <> expect then
              err lineno "checksum mismatch (corrupt feedback file?)"
        | [] | [ "" ] -> ()
        | _ -> err lineno ("unrecognized line: " ^ row))
    lines;
  if not !seen_checksum then
    err (List.length lines) "missing checksum (truncated file?)";
  if !fingerprint = "" then err 0 "missing source-fnv line";
  { fingerprint = !fingerprint; seed = !seed; freq = List.rev !freq }

let load path =
  let ic =
    try open_in path with Sys_error msg -> raise (Load_error { line = 0; msg })
  in
  let len = in_channel_length ic in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic len)
  in
  of_string s
