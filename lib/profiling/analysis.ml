(* Per-procedure analysis bundle: ECFG + CDG + FCDG over the lowered CFG,
   plus the classification of every FCDG control condition into the
   physical measurement that realizes it.

   Sites bridge the paper's analysis world (conditions live on ECFG nodes,
   some of them synthetic) and the execution world (the VM runs the
   original CFG):
   - a condition of an original branch node is an original CFG edge;
   - a preheader's body condition counts executions of the header node;
   - START's condition counts procedure invocations;
   - a RETURN/STOP node's U condition counts executions of that node
     (its ECFG out-edge to STOP does not exist in the original CFG);
   - pseudo conditions are never taken. *)

module Ir = S89_frontend.Ir
module Program = S89_frontend.Program
open S89_cfg
open S89_cdg

type cond = int * Label.t

type site =
  | Edge_site of int * Label.t (* original CFG edge (src, label) *)
  | Node_site of int (* executions of an original node *)
  | Invocation_site (* procedure entry (START, U) *)
  | Never (* pseudo conditions: always zero *)

type t = {
  proc : Program.proc;
  ecfg : Ir.info Ecfg.t;
  cdg : Control_dep.t;
  fcdg : Fcdg.t;
  conditions : cond list; (* all FCDG control conditions *)
}

let synthetic_info = { Ir.ir = Ir.Nop "SYNTH"; src_label = None }

exception Unanalyzable of { proc : string; reason : string }

(* The frequency laws assert FREQ(x) = FREQ(h) for every node x hanging
   under a loop preheader's body condition (ph, U) — "executes once per
   execution of the header".  That is only sound if x lies on every pass
   through the loop.  A jump from a loop's exit path back into its body
   (e.g. a GOTO back into a DO body from after it) keeps the graph
   reducible, but extends the natural loop to swallow its own exit path:
   some node then postdominates the header — so it hangs under (ph, U) —
   while whole iterations bypass it, and the laws silently overcount.
   Detect that up front: for every original node x control dependent on
   (ph, U), no pass through the loop (header to back-edge source or to
   exit-edge source, inside the members) may avoid x. *)
let check_body_conditions name (proc : Program.proc) (ecfg : _ Ecfg.t)
    (cdg : Control_dep.t) : unit =
  let module Digraph = S89_graph.Digraph in
  let cfg = proc.Program.cfg in
  let ivs = Ecfg.intervals ecfg in
  let cd = Control_dep.graph cdg in
  List.iter
    (fun h ->
      let ph = Ecfg.preheader_of_header ecfg h in
      let members = Intervals.members ivs h in
      let sinks = Hashtbl.create 8 in
      List.iter
        (fun s -> Hashtbl.replace sinks s ())
        (Intervals.back_edge_sources ivs h);
      List.iter
        (fun (e : Label.t Digraph.edge) -> Hashtbl.replace sinks e.src ())
        (Intervals.exit_edges ivs cfg h);
      List.iter
        (fun (e : Label.t Digraph.edge) ->
          if e.label = Ecfg.body_label && Ecfg.is_original ecfg e.dst && e.dst <> h
          then begin
            let x = e.dst in
            (* can a pass through the loop complete without touching x? *)
            let seen = Hashtbl.create 16 in
            let rec bypasses v =
              (not (Hashtbl.mem seen v))
              && begin
                   Hashtbl.replace seen v ();
                   Hashtbl.mem sinks v
                   || List.exists
                        (fun w ->
                          w <> h && w <> x
                          && Intervals.IS.mem w members
                          && bypasses w)
                        (Digraph.succs (Cfg.graph cfg) v)
                 end
            in
            if bypasses h then
              raise
                (Unanalyzable
                   {
                     proc = name;
                     reason =
                       Printf.sprintf
                         "loop at node %d re-entered around its header: node \
                          %d postdominates the header but is bypassed by some \
                          iteration, so the interval frequency laws do not \
                          apply"
                         h x;
                   })
          end)
        (Digraph.succ_edges cd ph))
    (Intervals.headers ivs)

let of_proc (proc : Program.proc) : t =
  let name = proc.Program.name in
  (* chaos hook: S89_FAULTS=analysis_raise:P fails this procedure's
     analysis, exercising the pipeline's graceful-degradation path *)
  (match S89_util.Fault.active () with
  | Some sp
    when S89_util.Fault.fires sp S89_util.Fault.Analysis_raise
           ~key:(S89_util.Fault.string_key name) ~attempt:0 ->
      raise
        (S89_util.Fault.Injected
           (S89_util.Fault.injected_msg S89_util.Fault.Analysis_raise
              ~key:(S89_util.Fault.string_key name)))
  | _ -> ());
  (* the interval/ECFG pipeline assumes reducibility (the paper does too);
     turn a violated assumption into a structured failure up front instead
     of undefined behaviour deep inside interval analysis *)
  (match Cfg.validate proc.Program.cfg with
  | Ok () ->
      if
        not
          (S89_graph.Reducibility.is_reducible
             (Cfg.graph proc.Program.cfg)
             ~root:(Cfg.entry proc.Program.cfg))
      then
        raise
          (Unanalyzable
             { proc = name; reason = "control flow graph is irreducible" })
  | Error e ->
      raise
        (Unanalyzable
           { proc = name; reason = Fmt.str "invalid CFG: %a" Cfg.pp_error e }));
  let ecfg = Ecfg.extend ~empty:synthetic_info proc.Program.cfg in
  let cdg = Control_dep.compute ecfg in
  check_body_conditions name proc ecfg cdg;
  let fcdg = Fcdg.of_cdg cdg ecfg in
  { proc; ecfg; cdg; fcdg; conditions = Fcdg.control_conditions fcdg }

(* [of_proc] only reads the (frozen-after-lowering) program structures and
   builds fresh per-procedure state, so procedures can be analyzed on
   separate domains; the table is filled on the caller, in program order,
   from the pool's input-order results — identical to the sequential
   path. *)
let of_program ?pool (prog : Program.t) : (string, t) Hashtbl.t =
  let procs = Array.of_list (Program.procs prog) in
  let analyses =
    match pool with
    | Some pool -> S89_exec.Pool.map pool of_proc procs
    | None -> Array.map of_proc procs
  in
  let tbl = Hashtbl.create 8 in
  Array.iteri (fun i a -> Hashtbl.replace tbl procs.(i).Program.name a) analyses;
  tbl

let site_of_condition t ((u, l) : cond) : site =
  if Label.is_pseudo l then Never
  else if u = Ecfg.start t.ecfg then
    if Label.equal l Label.U then Invocation_site else Never
  else if Ecfg.is_preheader t.ecfg u then
    if Label.equal l Ecfg.body_label then Node_site (Ecfg.header_of_preheader t.ecfg u)
    else Never
  else if Ecfg.is_original t.ecfg u then begin
    (* the original CFG has the edge unless it was the implicit fall-to-STOP *)
    if
      List.exists
        (fun (e : Label.t S89_graph.Digraph.edge) -> Label.equal e.label l)
        (Cfg.succ_edges t.proc.Program.cfg u)
    then Edge_site (u, l)
    else Node_site u
  end
  else Never (* postexit/stop: no real conditions originate here *)

(* The condition's TOTAL_FREQ from the VM's oracle counts — ground truth,
   used by tests and by estimation straight from an uninstrumented run. *)
let oracle_total (t : t) (vm : S89_vm.Interp.t) (c : cond) : int =
  let name = t.proc.Program.name in
  match site_of_condition t c with
  | Never -> 0
  | Invocation_site -> S89_vm.Interp.invocations vm name
  | Node_site n -> S89_vm.Interp.node_execs vm name n
  | Edge_site (n, l) -> S89_vm.Interp.edge_count vm name n l

(* All conditions with their oracle totals. *)
let oracle_totals t vm : (cond, int) Hashtbl.t =
  let tbl = Hashtbl.create 32 in
  List.iter (fun c -> Hashtbl.replace tbl c (oracle_total t vm c)) t.conditions;
  tbl

(* interval headers whose loop is an exit-free DO loop: every control flow
   into one of its postexits originates at the header itself — no branch
   in the body exits the loop (§3, third optimization: "look for an edge
   to a POSTEXIT node") *)
let exit_free_do_headers t : int list =
  let cfg = Ecfg.cfg t.ecfg in
  List.filter
    (fun h ->
      (match (Cfg.info cfg h).Ir.ir with Ir.Do_test _ -> true | _ -> false)
      && List.for_all
           (fun pe ->
             List.for_all
               (fun (e : Label.t S89_graph.Digraph.edge) ->
                 Label.is_pseudo e.label || e.src = h)
               (Cfg.pred_edges cfg pe))
           (Ecfg.postexits_of_header t.ecfg h))
    (Ecfg.headers t.ecfg)

let do_meta t h : Ir.do_meta option =
  match (Cfg.info (Ecfg.cfg t.ecfg) h).Ir.ir with
  | Ir.Do_test d -> Some d
  | _ -> None

(* Original-CFG entry edges of a loop: edges (u, h, l) from outside the
   interval (these were redirected to the preheader in the ECFG). *)
let entry_edges t h =
  let iv = Ecfg.intervals t.ecfg in
  let members = Intervals.members iv h in
  List.filter
    (fun (e : Label.t S89_graph.Digraph.edge) -> not (Intervals.IS.mem e.src members))
    (Cfg.pred_edges t.proc.Program.cfg h)
