(* Per-procedure analysis bundle: ECFG + CDG + FCDG over the lowered CFG,
   plus the classification of every FCDG control condition into the
   physical measurement that realizes it.

   Sites bridge the paper's analysis world (conditions live on ECFG nodes,
   some of them synthetic) and the execution world (the VM runs the
   original CFG):
   - a condition of an original branch node is an original CFG edge;
   - a preheader's body condition counts executions of the header node;
   - START's condition counts procedure invocations;
   - a RETURN/STOP node's U condition counts executions of that node
     (its ECFG out-edge to STOP does not exist in the original CFG);
   - pseudo conditions are never taken. *)

module Ir = S89_frontend.Ir
module Program = S89_frontend.Program
open S89_cfg
open S89_cdg

type cond = int * Label.t

type site =
  | Edge_site of int * Label.t (* original CFG edge (src, label) *)
  | Node_site of int (* executions of an original node *)
  | Invocation_site (* procedure entry (START, U) *)
  | Never (* pseudo conditions: always zero *)

type t = {
  proc : Program.proc;
  ecfg : Ir.info Ecfg.t;
  cdg : Control_dep.t;
  fcdg : Fcdg.t;
  conditions : cond list; (* all FCDG control conditions *)
}

let synthetic_info = { Ir.ir = Ir.Nop "SYNTH"; src_label = None }

let of_proc (proc : Program.proc) : t =
  let ecfg = Ecfg.extend ~empty:synthetic_info proc.Program.cfg in
  let cdg = Control_dep.compute ecfg in
  let fcdg = Fcdg.of_cdg cdg ecfg in
  { proc; ecfg; cdg; fcdg; conditions = Fcdg.control_conditions fcdg }

(* [of_proc] only reads the (frozen-after-lowering) program structures and
   builds fresh per-procedure state, so procedures can be analyzed on
   separate domains; the table is filled on the caller, in program order,
   from the pool's input-order results — identical to the sequential
   path. *)
let of_program ?pool (prog : Program.t) : (string, t) Hashtbl.t =
  let procs = Array.of_list (Program.procs prog) in
  let analyses =
    match pool with
    | Some pool -> S89_exec.Pool.map pool of_proc procs
    | None -> Array.map of_proc procs
  in
  let tbl = Hashtbl.create 8 in
  Array.iteri (fun i a -> Hashtbl.replace tbl procs.(i).Program.name a) analyses;
  tbl

let site_of_condition t ((u, l) : cond) : site =
  if Label.is_pseudo l then Never
  else if u = Ecfg.start t.ecfg then
    if Label.equal l Label.U then Invocation_site else Never
  else if Ecfg.is_preheader t.ecfg u then
    if Label.equal l Ecfg.body_label then Node_site (Ecfg.header_of_preheader t.ecfg u)
    else Never
  else if Ecfg.is_original t.ecfg u then begin
    (* the original CFG has the edge unless it was the implicit fall-to-STOP *)
    if
      List.exists
        (fun (e : Label.t S89_graph.Digraph.edge) -> Label.equal e.label l)
        (Cfg.succ_edges t.proc.Program.cfg u)
    then Edge_site (u, l)
    else Node_site u
  end
  else Never (* postexit/stop: no real conditions originate here *)

(* The condition's TOTAL_FREQ from the VM's oracle counts — ground truth,
   used by tests and by estimation straight from an uninstrumented run. *)
let oracle_total (t : t) (vm : S89_vm.Interp.t) (c : cond) : int =
  let name = t.proc.Program.name in
  match site_of_condition t c with
  | Never -> 0
  | Invocation_site -> S89_vm.Interp.invocations vm name
  | Node_site n -> S89_vm.Interp.node_execs vm name n
  | Edge_site (n, l) -> S89_vm.Interp.edge_count vm name n l

(* All conditions with their oracle totals. *)
let oracle_totals t vm : (cond, int) Hashtbl.t =
  let tbl = Hashtbl.create 32 in
  List.iter (fun c -> Hashtbl.replace tbl c (oracle_total t vm c)) t.conditions;
  tbl

(* interval headers whose loop is an exit-free DO loop: every control flow
   into one of its postexits originates at the header itself — no branch
   in the body exits the loop (§3, third optimization: "look for an edge
   to a POSTEXIT node") *)
let exit_free_do_headers t : int list =
  let cfg = Ecfg.cfg t.ecfg in
  List.filter
    (fun h ->
      (match (Cfg.info cfg h).Ir.ir with Ir.Do_test _ -> true | _ -> false)
      && List.for_all
           (fun pe ->
             List.for_all
               (fun (e : Label.t S89_graph.Digraph.edge) ->
                 Label.is_pseudo e.label || e.src = h)
               (Cfg.pred_edges cfg pe))
           (Ecfg.postexits_of_header t.ecfg h))
    (Ecfg.headers t.ecfg)

let do_meta t h : Ir.do_meta option =
  match (Cfg.info (Ecfg.cfg t.ecfg) h).Ir.ir with
  | Ir.Do_test d -> Some d
  | _ -> None

(* Original-CFG entry edges of a loop: edges (u, h, l) from outside the
   interval (these were redirected to the preheader in the ECFG). *)
let entry_edges t h =
  let iv = Ecfg.intervals t.ecfg in
  let members = Intervals.members iv h in
  List.filter
    (fun (e : Label.t S89_graph.Digraph.edge) -> not (Intervals.IS.mem e.src members))
    (Cfg.pred_edges t.proc.Program.cfg h)
