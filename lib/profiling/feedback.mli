(** Feedback profiles: the PGO loop's on-disk interchange format —
    per-procedure node frequencies of one profiled run, fingerprinted
    against the exact source text they were collected from (frequencies
    index CFG nodes positionally, so cross-program application must be a
    structured error, not silent misattribution). *)

module Diag = S89_diag.Diag

type t = {
  fingerprint : string;  (** FNV-1a/64 of the source text, 16 hex digits *)
  seed : int;  (** seed of the profiled run *)
  freq : (string * int array) list;  (** node frequencies per procedure *)
}

(** A feedback file that cannot be parsed (bad row, bad checksum,
    truncation, unreadable path). *)
exception Load_error of { line : int; msg : string }

(** The fingerprint [save]/[check] key profiles by. *)
val fingerprint_of_source : string -> string

(** Package a run's frequencies for [source] profiled under [seed]. *)
val make : source:string -> seed:int -> (string * int array) list -> t

(** [Error PGO001] when the profile was collected from different source
    text than the program it is being applied to. *)
val check : t -> source:string -> (unit, Diag.t) result

(** The full checksummed file image ([save] writes exactly this). *)
val to_string : t -> string

val save : t -> string -> unit

(** Parse a file image.  @raise Load_error on any malformation. *)
val of_string : string -> t

(** Load from a path.  @raise Load_error as {!of_string}. *)
val load : string -> t
