(* Control dependence (Definition 2, after Ferrante–Ottenstein–Warren).

   y is control dependent on x with label l iff
     1. y does not postdominate x,
     2. there is a path from x to y whose intermediate nodes are all
        postdominated by y,
     3. an edge labelled l leaves x towards the second node of that path.

   Equivalently (FOW87): for every ECFG edge (x,s,l) where s's
   postdominators do not include x's, the control dependent nodes are the
   postdominator-tree ancestors of s (inclusive) strictly below ipdom(x).
   We compute exactly that tree walk. *)

open S89_graph
open S89_cfg

exception Cannot_reach_stop of int list
(* nodes with no path to STOP; the paper assumes normal termination *)

type t = {
  g : Label.t Digraph.t; (* CDG edges (x, y, l): y is CD on condition (x,l) *)
  pdom : Postdom.t;
}

let compute (ecfg : 'a Ecfg.t) =
  let cfg = Ecfg.cfg ecfg in
  let graph = Cfg.graph cfg in
  let stop = Ecfg.stop ecfg in
  let pdom = Postdom.compute graph ~exit_:stop in
  let n = Digraph.num_nodes graph in
  let stuck = ref [] in
  for v = n - 1 downto 0 do
    if not (Postdom.reachable pdom v) then stuck := v :: !stuck
  done;
  if !stuck <> [] then raise (Cannot_reach_stop !stuck);
  (* Strong-control-dependence formulation (Chalupa et al., arXiv
     2011.01564): flatten the postdominator tree once into an [ipdom]
     array plus a tin/tout interval numbering, so the per-edge strict
     postdominance test and every ancestor-walk step are O(1) array reads
     instead of depth-lifting walks with per-step option and tuple-key
     allocations.  Node and out-edge order below replicates
     [Digraph.iter_edges] exactly, so the CDG edge sequence — and
     everything ordered downstream of it (FCDG labels, children,
     topological order, golden reports) — is unchanged. *)
  let ipdom = Array.make n (-1) in
  for v = 0 to n - 1 do
    match Postdom.ipostdom pdom v with
    | Some p -> ipdom.(v) <- p
    | None -> ()
  done;
  let tin = Array.make n 0 and tout = Array.make n 0 in
  let clock = ref 0 in
  let stack = Stack.create () in
  Stack.push (stop, false) stack;
  while not (Stack.is_empty stack) do
    let v, exiting = Stack.pop stack in
    if exiting then begin
      tout.(v) <- !clock;
      incr clock
    end
    else begin
      tin.(v) <- !clock;
      incr clock;
      Stack.push (v, true) stack;
      List.iter (fun c -> Stack.push (c, false) stack) (Postdom.children pdom v)
    end
  done;
  (* [s] is an ancestor of [x] in the postdominator tree iff its DFS
     interval contains [x]'s; strict postdominance additionally needs
     [s <> x]. *)
  let not_strictly_postdominates s x =
    s = x || not (tin.(s) <= tin.(x) && tout.(x) <= tout.(s))
  in
  let cdg = Digraph.create () in
  ignore (Digraph.add_nodes cdg n);
  (* The walk for edge (x,s,l) emits the postdominator-tree ancestors of
     [s] (inclusive) strictly below ipdom(x).  A single walk never
     revisits a node (strict ascent), so (x,t,l) duplicates can only
     arise when [x] has two out-edges sharing a label — rare enough that
     the common case skips dedup bookkeeping entirely.  When dedup is
     needed, a walk reaching a node already emitted for (x,l) stops
     early: the earlier walk continued from there to the same limit, so
     everything above is already present.  Total work is linear in the
     size of the CDG. *)
  let seen = Hashtbl.create 16 in
  for x = 0 to n - 1 do
    match Digraph.succ_edges graph x with
    | [] -> ()
    | edges ->
        let limit = ipdom.(x) in
        let rec has_dup_label = function
          | [] | [ _ ] -> false
          | (e : Label.t Digraph.edge) :: rest ->
              List.exists
                (fun (e' : Label.t Digraph.edge) -> Label.equal e.label e'.label)
                rest
              || has_dup_label rest
        in
        let dedup = has_dup_label edges in
        if dedup then Hashtbl.reset seen;
        List.iter
          (fun (e : Label.t Digraph.edge) ->
            let s = e.dst in
            if not_strictly_postdominates s x then begin
              let t = ref s and walking = ref true in
              while !walking && !t <> limit do
                if dedup && Hashtbl.mem seen (!t, e.label) then walking := false
                else begin
                  if dedup then Hashtbl.replace seen (!t, e.label) ();
                  ignore (Digraph.add_edge cdg ~src:x ~dst:!t ~label:e.label);
                  let t' = ipdom.(!t) in
                  if t' < 0 then walking := false else t := t'
                end
              done
            end)
          edges
  done;
  { g = cdg; pdom }

let graph t = t.g
let postdom t = t.pdom

(* Definitional check used as an independent oracle in tests:
   y is CD on (x,l) iff some edge (x,s,l) has y postdominating s but not
   strictly postdominating x.  Condition 1 of Definition 2 reads "y does
   not post-dominate x" with FOW87's strict postdominance, which admits
   the self-dependence of a single-node loop (y = x); the tree walk above
   produces exactly that set. *)
let is_control_dependent t (ecfg : 'a Ecfg.t) ~on:(x, l) y =
  let cfg = Ecfg.cfg ecfg in
  List.exists
    (fun (e : Label.t Digraph.edge) ->
      Label.equal e.label l
      && Postdom.postdominates t.pdom y e.dst
      && not (Postdom.strictly_postdominates t.pdom y x))
    (Cfg.succ_edges cfg x)
