(* Random MF77 program generator for property-based testing.

   Generated programs are:
   - terminating: every loop is a bounded DO; GOTOs only jump forward
     (conditional loop exits included, via EXIT-style forward GOTOs);
   - reducible by construction (backward edges come only from DO latches),
     which matches the paper's assumption;
   - runnable: variables are initialized before use, subscripts stay in
     bounds, RAND()/IRAND() make branch outcomes and trip counts vary with
     the VM seed.

   The generator produces an AST (so parser round-trip tests can compare
   structurally) and the matching source text comes from Ast.pp_program. *)

module Ast = S89_frontend.Ast
module Prng = S89_util.Prng

type ctx = {
  rng : Prng.t;
  mutable next_label : int;
  mutable depth : int; (* nesting depth, to bound program size *)
  mutable stmts_left : int; (* budget *)
  mutable exit_labels : int list; (* labels of enclosing-loop exits *)
}

let scalars = [ "X"; "Y"; "Z"; "W" ] (* REAL by implicit typing *)
let ints = [ "I"; "J"; "K"; "M" ] (* INTEGER by implicit typing *)
let array_name = "A"
let array_size = 32

let pick ctx xs = List.nth xs (Prng.int ctx.rng (List.length xs))

let fresh_label ctx =
  ctx.next_label <- ctx.next_label + 10;
  ctx.next_label

(* integer expression in a small safe range *)
let rec gen_int_expr ctx depth : Ast.expr =
  if depth <= 0 || Prng.int ctx.rng 3 = 0 then
    match Prng.int ctx.rng 3 with
    | 0 -> Ast.Int (1 + Prng.int ctx.rng 5)
    | 1 -> Ast.Var (pick ctx ints)
    | _ -> Ast.Call ("IRAND", [ Ast.Int (2 + Prng.int ctx.rng 6) ])
  else
    match Prng.int ctx.rng 3 with
    | 0 -> Ast.Binop (Ast.Add, gen_int_expr ctx (depth - 1), gen_int_expr ctx (depth - 1))
    | 1 -> Ast.Call ("MAX0", [ gen_int_expr ctx (depth - 1); Ast.Int 1 ])
    | _ -> Ast.Call ("MIN0", [ gen_int_expr ctx (depth - 1); Ast.Int 9 ])

(* bounded-index array subscript: 1 + MOD(|ie|, size) *)
let safe_subscript ctx =
  Ast.Binop
    ( Ast.Add,
      Ast.Int 1,
      Ast.Call ("MOD", [ Ast.Call ("IABS", [ gen_int_expr ctx 1 ]); Ast.Int array_size ])
    )

let rec gen_real_expr ctx depth : Ast.expr =
  if depth <= 0 || Prng.int ctx.rng 3 = 0 then
    match Prng.int ctx.rng 4 with
    | 0 -> Ast.Real (float_of_int (Prng.int ctx.rng 100) /. 10.0)
    | 1 -> Ast.Var (pick ctx scalars)
    | 2 -> Ast.Call ("RAND", [])
    | _ ->
        (* parser-level AST: array refs in expressions are unresolved Calls *)
        Ast.Call (array_name, [ safe_subscript ctx ])
  else
    match Prng.int ctx.rng 5 with
    | 0 ->
        Ast.Binop (Ast.Add, gen_real_expr ctx (depth - 1), gen_real_expr ctx (depth - 1))
    | 1 ->
        Ast.Binop (Ast.Mul, gen_real_expr ctx (depth - 1), gen_real_expr ctx (depth - 1))
    | 2 -> Ast.Call ("ABS", [ gen_real_expr ctx (depth - 1) ])
    | 3 -> Ast.Call ("SQRT", [ Ast.Call ("ABS", [ gen_real_expr ctx (depth - 1) ]) ])
    | _ ->
        Ast.Binop (Ast.Sub, gen_real_expr ctx (depth - 1), gen_real_expr ctx (depth - 1))

let gen_cond ctx : Ast.expr =
  let rel = pick ctx [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ] in
  if Prng.bool ctx.rng then Ast.Binop (rel, gen_real_expr ctx 1, gen_real_expr ctx 1)
  else Ast.Binop (rel, gen_int_expr ctx 1, gen_int_expr ctx 1)

let gen_assign ctx : Ast.stmt =
  match Prng.int ctx.rng 4 with
  | 0 -> Ast.Assign (Ast.Lvar (pick ctx ints), gen_int_expr ctx 2)
  | 1 | 2 -> Ast.Assign (Ast.Lvar (pick ctx scalars), gen_real_expr ctx 2)
  | _ -> Ast.Assign (Ast.Larr (array_name, [ safe_subscript ctx ]), gen_real_expr ctx 2)

let rec gen_stmt ctx : Ast.lstmt list =
  ctx.stmts_left <- ctx.stmts_left - 1;
  let simple s = [ { Ast.label = None; stmt = s } ] in
  let choice = Prng.int ctx.rng 11 in
  if ctx.stmts_left <= 0 || ctx.depth >= 3 then simple (gen_assign ctx)
  else
    match choice with
    | 0 | 1 | 2 | 3 -> simple (gen_assign ctx)
    | 4 | 5 ->
        (* IF block, possibly with ELSE *)
        let arms = [ (gen_cond ctx, gen_block ctx (1 + Prng.int ctx.rng 3)) ] in
        let arms =
          if Prng.int ctx.rng 3 = 0 then
            arms @ [ (gen_cond ctx, gen_block ctx (1 + Prng.int ctx.rng 2)) ]
          else arms
        in
        let els =
          if Prng.bool ctx.rng then Some (gen_block ctx (1 + Prng.int ctx.rng 2))
          else None
        in
        simple (Ast.If_block (arms, els))
    | 6 | 7 ->
        (* bounded DO loop, constant or variable trip count *)
        let var = pick ctx ints in
        let lo = Ast.Int 1 in
        let hi =
          if Prng.bool ctx.rng then Ast.Int (1 + Prng.int ctx.rng 6)
          else Ast.Call ("IRAND", [ Ast.Int (1 + Prng.int ctx.rng 6) ])
        in
        ctx.depth <- ctx.depth + 1;
        let exit_label = fresh_label ctx in
        let saved = ctx.exit_labels in
        ctx.exit_labels <- exit_label :: saved;
        let body = gen_block ctx (1 + Prng.int ctx.rng 4) in
        ctx.exit_labels <- saved;
        ctx.depth <- ctx.depth - 1;
        [ { Ast.label = None;
            stmt = Ast.Do { do_var = var; do_lo = lo; do_hi = hi; do_step = None;
                            do_body = body } };
          (* landing pad for conditional exits out of this loop *)
          { Ast.label = Some exit_label; stmt = Ast.Continue } ]
    | 8 ->
        (* conditional loop exit (forward GOTO), if inside a loop *)
        (match ctx.exit_labels with
        | l :: _ -> simple (Ast.If_logical (gen_cond ctx, Ast.Goto l))
        | [] -> simple (gen_assign ctx))
    | 9 ->
        (* call the auxiliary subroutine *)
        simple (Ast.Call_stmt ("HELPER", [ Ast.Var (pick ctx scalars) ]))
    | _ ->
        (* computed GOTO dispatcher with forward targets only *)
        let l1 = fresh_label ctx in
        let l2 = fresh_label ctx in
        let lend = fresh_label ctx in
        [ { Ast.label = None; stmt = Ast.Cgoto ([ l1; l2 ], gen_int_expr ctx 1) };
          (* out-of-range selector falls through here *)
          { Ast.label = None; stmt = gen_assign ctx };
          { Ast.label = None; stmt = Ast.Goto lend };
          { Ast.label = Some l1; stmt = gen_assign ctx };
          { Ast.label = None; stmt = Ast.Goto lend };
          { Ast.label = Some l2; stmt = gen_assign ctx };
          { Ast.label = Some lend; stmt = Ast.Continue } ]

and gen_block ctx n : Ast.block =
  if n <= 0 then [ { Ast.label = None; stmt = gen_assign ctx } ]
  else List.concat (List.init n (fun _ -> gen_stmt ctx))

let helper_unit : Ast.program_unit =
  {
    kind = Ast.Subroutine;
    name = "HELPER";
    params = [ "V" ];
    decls = [];
    body =
      [
        { Ast.label = None;
          stmt =
            Ast.If_block
              ( [ ( Ast.Binop (Ast.Gt, Ast.Var "V", Ast.Real 0.5),
                    [ { Ast.label = None;
                        stmt = Ast.Assign (Ast.Lvar "V", Ast.Binop (Ast.Mul, Ast.Var "V", Ast.Real 0.5)) } ] )
                ],
                Some
                  [ { Ast.label = None;
                      stmt = Ast.Assign (Ast.Lvar "V", Ast.Binop (Ast.Add, Ast.Var "V", Ast.Real 0.25)) } ] )
        };
      ];
  }

(* generate a full program AST from a seed *)
(* initialize everything the generator may read *)
let prelude () =
  List.map
    (fun v -> { Ast.label = None; stmt = Ast.Assign (Ast.Lvar v, Ast.Int 1) })
    ints
  @ List.map
      (fun v ->
        { Ast.label = None; stmt = Ast.Assign (Ast.Lvar v, Ast.Call ("RAND", [])) })
      scalars
  @ [ { Ast.label = None;
        stmt =
          Ast.Do
            { do_var = "I"; do_lo = Ast.Int 1; do_hi = Ast.Int array_size;
              do_step = None;
              do_body =
                [ { Ast.label = None;
                    stmt =
                      Ast.Assign
                        (Ast.Larr (array_name, [ Ast.Var "I" ]), Ast.Call ("RAND", []))
                  } ] } } ]

let gen_ast ?(size = 14) seed : Ast.program =
  let ctx =
    { rng = Prng.create ~seed; next_label = 100; depth = 0; stmts_left = size;
      exit_labels = [] }
  in
  let body = prelude () @ gen_block ctx (3 + Prng.int ctx.rng 4) in
  let main =
    {
      Ast.kind = Ast.Program;
      name = "RANDPROG";
      params = [];
      decls = [ Ast.Dvar (Ast.Treal, [ (array_name, [ array_size ]) ]) ];
      body;
    }
  in
  [ main; helper_unit ]

let gen_source ?size seed : string = Ast.to_source (gen_ast ?size seed)

let gen_program ?size seed : S89_frontend.Program.t =
  S89_frontend.Program.of_source (gen_source ?size seed)

(* ---------------- scale generators (incremental benchmarks) -------- *)

let proc_name i = Printf.sprintf "P%d" i

(* One randomly-generated subroutine: the shared prelude, a random body
   with the [gen_ast] statement distribution, then an editable constant
   update and (optionally) a call to [call] — the call-DAG edges the
   incremental-analysis benchmarks rely on.  The body depends only on
   [seed] and [const], so bumping one procedure's constant regenerates a
   program identical everywhere else. *)
let gen_unit ?(size = 3) ~seed ~name ?call ~const () : Ast.program_unit =
  let ctx =
    { rng = Prng.create ~seed; next_label = 100; depth = 0; stmts_left = 12 * size;
      exit_labels = [] }
  in
  let tail =
    { Ast.label = None;
      stmt =
        Ast.Assign
          (Ast.Lvar "X", Ast.Binop (Ast.Add, Ast.Var "X", Ast.Real (float_of_int const)))
    }
    ::
    (match call with
    | None -> []
    | Some callee ->
        [ { Ast.label = None; stmt = Ast.Call_stmt (callee, [ Ast.Var "X" ]) } ])
  in
  { Ast.kind = Ast.Subroutine; name; params = [ "X" ];
    decls = [ Ast.Dvar (Ast.Treal, [ (array_name, [ array_size ]) ]) ];
    body = prelude () @ gen_block ctx (size + Prng.int ctx.rng 3) @ tail }

(* A multi-procedure program for incremental-analysis benchmarks: MAIN
   calls [P0..P<k-1>]; each [P<i>] additionally calls [P<i+fan>], so the
   dirty cone of an edit to [P<j>] is its caller chain
   [{P<j>, P<j-fan>, ..., MAIN}].  [consts.(i)] is [P<i>]'s editable
   constant: bump one slot and regenerate to model a procedure-local
   edit. *)
let gen_incremental_ast ?size ?(fan = 3) ~consts seed : Ast.program =
  let k = Array.length consts in
  let main =
    { Ast.kind = Ast.Program; name = "DRIVER"; params = []; decls = [];
      body =
        { Ast.label = None; stmt = Ast.Assign (Ast.Lvar "X", Ast.Real 0.0) }
        :: List.init k (fun i ->
               { Ast.label = None;
                 stmt = Ast.Call_stmt (proc_name i, [ Ast.Var "X" ]) }) }
  in
  let units =
    List.init k (fun i ->
        gen_unit ?size
          ~seed:(seed lxor ((i + 1) * 0x9e3779))
          ~name:(proc_name i)
          ?call:(if i + fan < k then Some (proc_name (i + fan)) else None)
          ~const:consts.(i) ())
  in
  (main :: units) @ [ helper_unit ]

let gen_incremental_source ?size ?fan ~consts seed : string =
  Ast.to_source (gen_incremental_ast ?size ?fan ~consts seed)

(* A single-procedure program whose statement-level CFG has roughly
   [nodes] nodes: repeated DO loops of branch diamonds with conditional
   exits — long postdominator chains crossed by loop-exit edges, the
   shape that punishes ancestor-walk control-dependence construction. *)
let gen_wide_cfg_source ?(nodes = 100_000) () : string =
  let diamonds = 40 in
  (* statements per block: loop header/footer + exit + 4 per diamond *)
  let per_block = (4 * diamonds) + 5 in
  let blocks = max 1 ((nodes + per_block - 1) / per_block) in
  let b = Buffer.create (nodes * 32) in
  Buffer.add_string b "      PROGRAM WIDE\n      X = RAND()\n";
  for blk = 0 to blocks - 1 do
    let l = 100 + (10 * blk) in
    Printf.bprintf b "      DO %d I = 1, 3\n" l;
    for _ = 1 to diamonds do
      Buffer.add_string b "      IF (X .GT. 0.5) THEN\n";
      Buffer.add_string b "      X = X * 0.5\n";
      Buffer.add_string b "      ELSE\n";
      Buffer.add_string b "      X = X + 0.25\n";
      Buffer.add_string b "      ENDIF\n"
    done;
    Printf.bprintf b "      IF (X .GT. 0.9) GOTO %d\n" (l + 5);
    Printf.bprintf b "%d    CONTINUE\n" l;
    Printf.bprintf b "%d    CONTINUE\n" (l + 5)
  done;
  Buffer.add_string b "      END\n";
  Buffer.contents b
