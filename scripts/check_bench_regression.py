#!/usr/bin/env python3
"""Guard against VM-backend performance regressions.

Compares a freshly generated bench JSON (``bench/main.exe -- t1 --json``)
against the committed baseline (``BENCH_PR1.json``) and fails if any
``table1/*`` entry's ``speedup_vs_tree`` dropped by more than the allowed
fraction (default 20%).  Entries present in only one file are reported but
do not fail the check; absolute wall times are ignored because CI hardware
varies — the compiled-vs-tree *ratio* is the stable signal.

Usage: check_bench_regression.py CURRENT.json [BASELINE.json] [--tolerance 0.2]
"""

import argparse
import json
import sys


def load_speedups(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for row in data.get("benchmarks", []):
        name = row.get("name", "")
        if name.startswith("table1/") and "speedup_vs_tree" in row:
            out[name] = float(row["speedup_vs_tree"])
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline", nargs="?", default="BENCH_PR1.json")
    ap.add_argument("--tolerance", type=float, default=0.2,
                    help="allowed fractional drop vs baseline (default 0.2)")
    args = ap.parse_args()

    current = load_speedups(args.current)
    baseline = load_speedups(args.baseline)
    if not baseline:
        print(f"error: no table1 speedup_vs_tree entries in {args.baseline}")
        return 2
    if not current:
        print(f"error: no table1 speedup_vs_tree entries in {args.current}")
        return 2

    failed = False
    for name, base in sorted(baseline.items()):
        if name not in current:
            print(f"warn: {name} missing from {args.current}")
            continue
        cur = current[name]
        floor = base * (1.0 - args.tolerance)
        status = "ok" if cur >= floor else "REGRESSION"
        print(f"{status:10s} {name}: {cur:.3f}x vs baseline {base:.3f}x "
              f"(floor {floor:.3f}x)")
        if cur < floor:
            failed = True
    for name in sorted(set(current) - set(baseline)):
        print(f"note: {name} not in baseline (new entry)")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
