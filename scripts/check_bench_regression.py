#!/usr/bin/env python3
"""Guard against VM-backend performance regressions.

Compares a freshly generated bench JSON (``bench/main.exe -- t1 --json``)
against the committed baseline (``BENCH_PR1.json``) and fails if any
``table1/*`` entry's ``speedup_vs_tree`` dropped by more than the allowed
fraction (default 20%).  Entries present in only one file are reported but
do not fail the check; absolute wall times are ignored because CI hardware
varies — the compiled-vs-tree *ratio* is the stable signal.

Additionally, any ``guards/*`` entry in the current file (the PR-4
``guards`` bench target) must report a ``guard_overhead`` at or below
``--guard-threshold`` (default 2%): guarded execution is required to be
free on the hot path.

The PR-6 bytecode backend adds two more gates on ``table1/*`` entries of
the current file: ``speedup_bytecode_vs_compiled`` must stay at or above
``--bytecode-floor`` (default 1.25x, raised from the PR-6 floor of 1.2x
by the PR-7 PGO work; the committed BENCH_PR7.json records 1.8-2.1x on
dev hardware), and ``probe_overhead_bytecode`` must stay at or below
``--probe-threshold`` (default 5%).  The probe overhead is measured as
the median of interleaved best-of-N timing pairs, which removes drift
bias but still carries a few percent of residual jitter either way
(BENCH_PR6.json recorded *negative* overheads on some rows); the
threshold is therefore deliberately wider than the true ~1% effect, and
only the positive direction is gated — probes measuring faster than the
uninstrumented run is noise, not a cost.  All fields are optional per
entry so older bench JSONs still pass.

The PR-7 PGO loop adds three more optional gates on ``table1/*`` entries:
``fallback_execs / max(1, fallback_execs_pgo)`` must reach
``--fallback-reduction-floor`` (default 10x — PGO inlining must eliminate
at least 10x of the bytecode's FALLBACK escapes to the tree walker),
``pgo_prediction_error`` must stay at or below ``--pgo-error-threshold``
(default 0.15 — the estimator's closed-form prediction of its own
reoptimization delta; the node-id-preserving reoptimizer makes this
exactly 0 in practice), and ``cycles_pgo`` must never exceed
``cycles_original`` (reoptimization must not regress simulated cycles).

The PR-8 incremental-memo work adds gates on ``incremental/*`` entries of
the current file: ``warm_speedup`` (cold / warm re-analysis latency over
the edit-stream replay) must reach ``--warm-speedup-floor`` (default 5x,
CI-lenient; dev hardware records 14-16x in BENCH_PR8.json),
``hit_rate`` must reach ``--hit-rate-floor`` (default 0.75), and a
``byte_identical`` field, when present, must be ``"yes"`` — a memoized
re-analysis that is fast but wrong is worse than no memo at all.

The PR-9 TCP service adds gates on ``serve/*`` entries of the current
file: ``p99_latency_s`` must stay at or below ``--serve-p99-threshold``
(default 5.0s — CI-lenient; dev hardware records ~0.06s steady-state), a
row marked ``saturated: "yes"`` (the overload burst) must report
``rejection_rate`` above 0 — a saturated server that sheds nothing has a
broken admission queue — and a non-saturated row's ``rejection_rate``
must stay at or below ``--rejection-rate-max`` (default 0.05).

Rows present in both files are also compared field-by-field: a field
recorded in the baseline row but missing from the current row prints a
``note:`` warning (fields feed gates, so one silently vanishing would
disable its gate without failing anything).

Malformed input (missing file, invalid JSON, a bench entry whose field is
not numeric) is reported as a one-line error with exit status 2 — never a
traceback — so CI logs point at the broken file, not at this script.

Usage: check_bench_regression.py CURRENT.json [BASELINE.json]
       [--tolerance 0.2] [--guard-threshold 0.02]
"""

import argparse
import json
import sys


class BenchInputError(Exception):
    """A bench JSON file that cannot be interpreted."""


def load_entries(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        raise BenchInputError(f"cannot read {path}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        raise BenchInputError(f"{path} is not valid JSON: {e}")
    if not isinstance(data, dict) or not isinstance(data.get("benchmarks"), list):
        raise BenchInputError(
            f"{path}: expected a JSON object with a 'benchmarks' array")
    return data["benchmarks"]


def load_field(path, prefix, field):
    out = {}
    for row in load_entries(path):
        if not isinstance(row, dict):
            raise BenchInputError(f"{path}: non-object entry in 'benchmarks'")
        name = row.get("name", "")
        if name.startswith(prefix) and field in row:
            try:
                out[name] = float(row[field])
            except (TypeError, ValueError):
                raise BenchInputError(
                    f"{path}: entry {name!r} has non-numeric {field}: "
                    f"{row[field]!r}")
    return out


def load_speedups(path):
    return load_field(path, "table1/", "speedup_vs_tree")


def load_guard_overheads(path):
    return load_field(path, "guards/", "guard_overhead")


def load_bytecode_speedups(path):
    return load_field(path, "table1/", "speedup_bytecode_vs_compiled")


def load_bytecode_probe_overheads(path):
    return load_field(path, "table1/", "probe_overhead_bytecode")


def load_rows_by_name(path):
    """All rows keyed by name (for field-presence comparison)."""
    out = {}
    for row in load_entries(path):
        if not isinstance(row, dict):
            raise BenchInputError(f"{path}: non-object entry in 'benchmarks'")
        name = row.get("name", "")
        if name:
            out[name] = row
    return out


def load_incremental_rows(path):
    """incremental/* rows carrying the PR-8 memo fields, keyed by name."""
    out = {}
    for name, row in load_rows_by_name(path).items():
        if name.startswith("incremental/") and "warm_speedup" in row:
            checked = {}
            for f in ("warm_speedup", "hit_rate"):
                if f in row:
                    try:
                        checked[f] = float(row[f])
                    except (TypeError, ValueError):
                        raise BenchInputError(
                            f"{path}: entry {name!r} has non-numeric {f}: "
                            f"{row[f]!r}")
            if "byte_identical" in row:
                checked["byte_identical"] = row["byte_identical"]
            out[name] = checked
    return out


def load_serve_rows(path):
    """serve/* rows carrying the PR-9 service fields, keyed by name."""
    out = {}
    for name, row in load_rows_by_name(path).items():
        if name.startswith("serve/"):
            checked = {}
            for f in ("p99_latency_s", "p50_latency_s", "rejection_rate",
                      "flood_p99_ratio", "store_bytes_after_gc",
                      "max_store_bytes"):
                if f in row:
                    try:
                        checked[f] = float(row[f])
                    except (TypeError, ValueError):
                        raise BenchInputError(
                            f"{path}: entry {name!r} has non-numeric {f}: "
                            f"{row[f]!r}")
            if "saturated" in row:
                checked["saturated"] = row["saturated"]
            out[name] = checked
    return out


def load_pgo_rows(path):
    """table1 rows carrying the PR-7 PGO fields, keyed by name."""
    fields = ("fallback_execs", "fallback_execs_pgo", "cycles_original",
              "cycles_pgo", "pgo_prediction_error")
    per_field = {f: load_field(path, "table1/", f) for f in fields}
    names = set(per_field["fallback_execs_pgo"])
    out = {}
    for name in names:
        row = {}
        for f in fields:
            if name in per_field[f]:
                row[f] = per_field[f][name]
        out[name] = row
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline", nargs="?", default="BENCH_PR1.json")
    ap.add_argument("--tolerance", type=float, default=0.2,
                    help="allowed fractional drop vs baseline (default 0.2)")
    ap.add_argument("--guard-threshold", type=float, default=0.02,
                    help="max allowed guards/* guard_overhead (default 0.02)")
    ap.add_argument("--bytecode-floor", type=float, default=1.25,
                    help="min allowed table1/* speedup_bytecode_vs_compiled "
                         "(default 1.25)")
    ap.add_argument("--probe-threshold", type=float, default=0.05,
                    help="max allowed table1/* probe_overhead_bytecode "
                         "(default 0.05; median-of-pairs measurement still "
                         "jitters a few percent either way)")
    ap.add_argument("--fallback-reduction-floor", type=float, default=10.0,
                    help="min allowed table1/* fallback_execs / "
                         "max(1, fallback_execs_pgo) (default 10)")
    ap.add_argument("--pgo-error-threshold", type=float, default=0.15,
                    help="max allowed table1/* pgo_prediction_error "
                         "(default 0.15)")
    ap.add_argument("--warm-speedup-floor", type=float, default=5.0,
                    help="min allowed incremental/* warm_speedup "
                         "(default 5; dev hardware records 14-16x)")
    ap.add_argument("--hit-rate-floor", type=float, default=0.75,
                    help="min allowed incremental/* hit_rate (default 0.75)")
    ap.add_argument("--serve-p99-threshold", type=float, default=5.0,
                    help="max allowed serve/* p99_latency_s (default 5.0; "
                         "dev hardware records ~0.06s steady-state)")
    ap.add_argument("--rejection-rate-max", type=float, default=0.05,
                    help="max allowed serve/* rejection_rate on rows not "
                         "marked saturated (default 0.05)")
    ap.add_argument("--flood-p99-ratio-max", type=float, default=2.0,
                    help="max allowed serve/* flood_p99_ratio: the "
                         "well-behaved tenant's p99 under a flooding tenant, "
                         "as a multiple of its unloaded baseline "
                         "(default 2.0; dev hardware records ~1.1x)")
    args = ap.parse_args()

    try:
        current = load_speedups(args.current)
        baseline = load_speedups(args.baseline)
        guard_overheads = load_guard_overheads(args.current)
        bc_speedups = load_bytecode_speedups(args.current)
        bc_probe_overheads = load_bytecode_probe_overheads(args.current)
        pgo_rows = load_pgo_rows(args.current)
        serve_rows = load_serve_rows(args.current)
        inc_rows = load_incremental_rows(args.current)
        current_rows = load_rows_by_name(args.current)
        baseline_rows = load_rows_by_name(args.baseline)
    except BenchInputError as e:
        print(f"error: {e}")
        return 2
    if not baseline:
        print(f"error: no table1 speedup_vs_tree entries in {args.baseline}")
        return 2
    if not current:
        print(f"error: no table1 speedup_vs_tree entries in {args.current}")
        return 2

    failed = False
    for name, base in sorted(baseline.items()):
        if name not in current:
            # a silently vanished bench target would hide any regression in
            # it forever, so absence is itself a failure
            print(f"MISSING    {name}: in baseline {args.baseline} but not "
                  f"in {args.current}")
            failed = True
            continue
        cur = current[name]
        floor = base * (1.0 - args.tolerance)
        status = "ok" if cur >= floor else "REGRESSION"
        print(f"{status:10s} {name}: {cur:.3f}x vs baseline {base:.3f}x "
              f"(floor {floor:.3f}x)")
        if cur < floor:
            failed = True
    for name in sorted(set(current) - set(baseline)):
        print(f"note: {name} not in baseline (new entry)")

    for name, overhead in sorted(guard_overheads.items()):
        ok = overhead <= args.guard_threshold
        status = "ok" if ok else "REGRESSION"
        print(f"{status:10s} {name}: guard overhead {overhead * 100:+.2f}% "
              f"(threshold {args.guard_threshold * 100:.2f}%)")
        if not ok:
            failed = True

    for name, speedup in sorted(bc_speedups.items()):
        ok = speedup >= args.bytecode_floor
        status = "ok" if ok else "REGRESSION"
        print(f"{status:10s} {name}: bytecode vs compiled {speedup:.3f}x "
              f"(floor {args.bytecode_floor:.2f}x)")
        if not ok:
            failed = True

    for name, overhead in sorted(bc_probe_overheads.items()):
        ok = overhead <= args.probe_threshold
        status = "ok" if ok else "REGRESSION"
        print(f"{status:10s} {name}: bytecode smart-probe overhead "
              f"{overhead * 100:+.2f}% "
              f"(threshold {args.probe_threshold * 100:.2f}%)")
        if not ok:
            failed = True

    for name, row in sorted(pgo_rows.items()):
        if "fallback_execs" in row:
            before = row["fallback_execs"]
            after = row["fallback_execs_pgo"]
            reduction = before / max(1.0, after)
            ok = reduction >= args.fallback_reduction_floor
            status = "ok" if ok else "REGRESSION"
            print(f"{status:10s} {name}: pgo fallback execs {before:.0f} -> "
                  f"{after:.0f} ({reduction:.1f}x, floor "
                  f"{args.fallback_reduction_floor:.0f}x)")
            if not ok:
                failed = True
        if "pgo_prediction_error" in row:
            err = row["pgo_prediction_error"]
            ok = err <= args.pgo_error_threshold
            status = "ok" if ok else "REGRESSION"
            print(f"{status:10s} {name}: pgo prediction error {err * 100:.2f}% "
                  f"(threshold {args.pgo_error_threshold * 100:.0f}%)")
            if not ok:
                failed = True
        if "cycles_pgo" in row and "cycles_original" in row:
            ok = row["cycles_pgo"] <= row["cycles_original"]
            status = "ok" if ok else "REGRESSION"
            print(f"{status:10s} {name}: pgo cycles {row['cycles_pgo']:.0f} "
                  f"vs original {row['cycles_original']:.0f}")
            if not ok:
                failed = True

    for name, row in sorted(inc_rows.items()):
        if "warm_speedup" in row:
            speedup = row["warm_speedup"]
            ok = speedup >= args.warm_speedup_floor
            status = "ok" if ok else "REGRESSION"
            print(f"{status:10s} {name}: warm re-analysis speedup "
                  f"{speedup:.1f}x (floor {args.warm_speedup_floor:.0f}x)")
            if not ok:
                failed = True
        if "hit_rate" in row:
            rate = row["hit_rate"]
            ok = rate >= args.hit_rate_floor
            status = "ok" if ok else "REGRESSION"
            print(f"{status:10s} {name}: memo hit rate {rate * 100:.1f}% "
                  f"(floor {args.hit_rate_floor * 100:.0f}%)")
            if not ok:
                failed = True
        if "byte_identical" in row:
            ok = row["byte_identical"] == "yes"
            status = "ok" if ok else "REGRESSION"
            print(f"{status:10s} {name}: memoized output byte-identical: "
                  f"{row['byte_identical']}")
            if not ok:
                failed = True

    for name, row in sorted(serve_rows.items()):
        saturated = row.get("saturated") == "yes"
        if "p99_latency_s" in row:
            p99 = row["p99_latency_s"]
            ok = p99 <= args.serve_p99_threshold
            status = "ok" if ok else "REGRESSION"
            print(f"{status:10s} {name}: p99 job latency {p99:.4f}s "
                  f"(threshold {args.serve_p99_threshold:.1f}s)")
            if not ok:
                failed = True
        if "rejection_rate" in row:
            rate = row["rejection_rate"]
            if saturated:
                # an overload run that sheds nothing means admission
                # control silently stopped bounding the queue
                ok = rate > 0.0
                status = "ok" if ok else "REGRESSION"
                print(f"{status:10s} {name}: saturated rejection rate "
                      f"{rate * 100:.0f}% (must shed under overload)")
            else:
                ok = rate <= args.rejection_rate_max
                status = "ok" if ok else "REGRESSION"
                print(f"{status:10s} {name}: rejection rate {rate * 100:.1f}% "
                      f"(max {args.rejection_rate_max * 100:.0f}%)")
            if not ok:
                failed = True
        if "flood_p99_ratio" in row:
            ratio = row["flood_p99_ratio"]
            ok = ratio <= args.flood_p99_ratio_max
            status = "ok" if ok else "REGRESSION"
            print(f"{status:10s} {name}: well-behaved p99 under flood "
                  f"{ratio:.2f}x unloaded "
                  f"(max {args.flood_p99_ratio_max:.1f}x)")
            if not ok:
                failed = True
        if "store_bytes_after_gc" in row and row.get("max_store_bytes", 0) > 0:
            after = row["store_bytes_after_gc"]
            bound = row["max_store_bytes"]
            ok = after <= bound
            status = "ok" if ok else "REGRESSION"
            print(f"{status:10s} {name}: store after GC {after:.0f} bytes "
                  f"(bound {bound:.0f})")
            if not ok:
                failed = True

    # fields feed gates above, so a field that silently vanishes from a
    # row would disable its gate without failing anything — surface it
    for name in sorted(set(current_rows) & set(baseline_rows)):
        gone = sorted(set(baseline_rows[name]) - set(current_rows[name]))
        if gone:
            print(f"note: {name} lost field(s) vs {args.baseline}: "
                  f"{', '.join(gone)}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
