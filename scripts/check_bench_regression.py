#!/usr/bin/env python3
"""Guard against VM-backend performance regressions.

Compares a freshly generated bench JSON (``bench/main.exe -- t1 --json``)
against the committed baseline (``BENCH_PR1.json``) and fails if any
``table1/*`` entry's ``speedup_vs_tree`` dropped by more than the allowed
fraction (default 20%).  Entries present in only one file are reported but
do not fail the check; absolute wall times are ignored because CI hardware
varies — the compiled-vs-tree *ratio* is the stable signal.

Additionally, any ``guards/*`` entry in the current file (the PR-4
``guards`` bench target) must report a ``guard_overhead`` at or below
``--guard-threshold`` (default 2%): guarded execution is required to be
free on the hot path.

Usage: check_bench_regression.py CURRENT.json [BASELINE.json]
       [--tolerance 0.2] [--guard-threshold 0.02]
"""

import argparse
import json
import sys


def load_entries(path):
    with open(path) as f:
        data = json.load(f)
    return data.get("benchmarks", [])


def load_speedups(path):
    out = {}
    for row in load_entries(path):
        name = row.get("name", "")
        if name.startswith("table1/") and "speedup_vs_tree" in row:
            out[name] = float(row["speedup_vs_tree"])
    return out


def load_guard_overheads(path):
    out = {}
    for row in load_entries(path):
        name = row.get("name", "")
        if name.startswith("guards/") and "guard_overhead" in row:
            out[name] = float(row["guard_overhead"])
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline", nargs="?", default="BENCH_PR1.json")
    ap.add_argument("--tolerance", type=float, default=0.2,
                    help="allowed fractional drop vs baseline (default 0.2)")
    ap.add_argument("--guard-threshold", type=float, default=0.02,
                    help="max allowed guards/* guard_overhead (default 0.02)")
    args = ap.parse_args()

    current = load_speedups(args.current)
    baseline = load_speedups(args.baseline)
    if not baseline:
        print(f"error: no table1 speedup_vs_tree entries in {args.baseline}")
        return 2
    if not current:
        print(f"error: no table1 speedup_vs_tree entries in {args.current}")
        return 2

    failed = False
    for name, base in sorted(baseline.items()):
        if name not in current:
            print(f"warn: {name} missing from {args.current}")
            continue
        cur = current[name]
        floor = base * (1.0 - args.tolerance)
        status = "ok" if cur >= floor else "REGRESSION"
        print(f"{status:10s} {name}: {cur:.3f}x vs baseline {base:.3f}x "
              f"(floor {floor:.3f}x)")
        if cur < floor:
            failed = True
    for name in sorted(set(current) - set(baseline)):
        print(f"note: {name} not in baseline (new entry)")

    for name, overhead in sorted(load_guard_overheads(args.current).items()):
        ok = overhead <= args.guard_threshold
        status = "ok" if ok else "REGRESSION"
        print(f"{status:10s} {name}: guard overhead {overhead * 100:+.2f}% "
              f"(threshold {args.guard_threshold * 100:.2f}%)")
        if not ok:
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
