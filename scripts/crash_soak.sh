#!/usr/bin/env bash
# Crash-recovery soak for `ptranc batch`.
#
# Builds a reference run (no crash), then for each of $POINTS seeded kill
# points: starts a fault-injected batch over the same workload, SIGKILLs it
# at a deterministic delay, resumes with `--resume`, and asserts that
#   * the resumed batch exits 0,
#   * the exported profile database is byte-identical to the reference,
#   * the printed estimates are identical to the reference report
#     (modulo the trailer line that names the per-point store directory).
# Any mismatch copies the surviving store (snapshot + WAL) into
# $ARTIFACTS/ for post-mortem and fails the job.
#
# Tunables (env): POINTS (kill points, default 20), RUNS (profiled runs,
# default 120), SEED (base VM seed, default 7), SOAK_FAULTS (S89_FAULTS
# spec injected into the killed attempt only, default wal_torn:0.01,seed:3),
# ARTIFACTS (default soak-artifacts).
#
# MODE=live runs the TCP-service soak instead: a `ptranc serve --tcp`
# server under live concurrent load from $TENANTS parallel submitters
# ($JOBS_PER_TENANT jobs each, every submission retried through NET001
# rejections and server-down windows), SIGKILLed $KILLS times on a
# seeded schedule and restarted against the same store root.  After the
# load drains, every job must reach `done` and its report must be
# byte-identical to an uninterrupted `ptranc batch -O` reference —
# i.e. zero completed runs lost across any kill.  Live tunables:
# TENANTS (default 4), JOBS_PER_TENANT (default 500), KILLS (default
# 10), RUNS_LIVE (runs per job, default 5), PORT (default 7189).
#
# MODE=exhaust runs the resource-exhaustion chaos soak: one governed
# server (tenant quotas, store GC, connection cap, frame deadlines)
# under a flooding tenant, $SLOW_CLIENTS slow-drip (slowloris)
# connections, and $MIN_WINDOWS injected ENOSPC windows (driven via
# the server's S89_FAULTS_PULSE + SIGUSR1/SIGUSR2 toggle, so every
# durable write fails while a window is open and recovers when it
# closes), while a well-behaved tenant's per-job latency is sampled
# before and during the chaos.  Asserts: the server never crashes,
# every accepted job (flood included) reaches a terminal state, at
# least $MIN_WINDOWS disk-pressure windows were entered and
# recovered, at least one slow client was cut by the frame deadline,
# the well-behaved p99 stays within 2x the unloaded baseline (or an
# absolute $P99_FLOOR-second floor, whichever is larger), and the
# store directory shrinks back under --max-store-bytes once GC
# drains.  Exhaust tunables: BASELINE_JOBS / LOADED_JOBS (default
# 15 each), FLOODERS (default 1), SLOW_CLIENTS (default 4),
# MIN_WINDOWS (ENOSPC windows, default 3), WINDOW_SECONDS (default
# 1.0), MAX_STORE_BYTES (default 2 MiB), EXH_FAULTS (pulse spec,
# default enospc:1.0,seed:11), PORT (default 7389).

set -u

POINTS="${POINTS:-20}"
RUNS="${RUNS:-120}"
SEED="${SEED:-7}"
SOAK_FAULTS="${SOAK_FAULTS:-wal_torn:0.01,seed:3}"
ARTIFACTS="${ARTIFACTS:-soak-artifacts}"

say() { printf 'soak: %s\n' "$*"; }
die() { printf 'soak: FATAL: %s\n' "$*" >&2; exit 1; }

command -v dune >/dev/null || die "dune not on PATH"
dune build bin/ptranc.exe || die "build failed"
BIN="$(pwd)/_build/default/bin/ptranc.exe"
[ -x "$BIN" ] || die "missing $BIN"

# ---------------------------------------------------------------------
# MODE=live: kill a loaded TCP server, prove no completed run is lost
# ---------------------------------------------------------------------
if [ "${MODE:-}" = "live" ]; then
    TENANTS="${TENANTS:-4}"
    JOBS_PER_TENANT="${JOBS_PER_TENANT:-500}"
    KILLS="${KILLS:-10}"
    RUNS_LIVE="${RUNS_LIVE:-5}"
    PORT="${PORT:-7189}"
    ADDR="127.0.0.1:$PORT"

    WORK="$(mktemp -d "${TMPDIR:-/tmp}/crash-soak-live.XXXXXX")"
    SERVER_PID=""
    cleanup() {
        [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
        wait 2>/dev/null
        rm -rf "$WORK"
    }
    trap cleanup EXIT
    STORE="$WORK/stores"
    SRC="$WORK/fig1.f"
    "$BIN" demo fig1 > "$SRC" || die "could not emit demo source"

    # the server runs the optimized cost model; `batch -O` is the
    # uninterrupted reference every job's report must reproduce
    "$BIN" batch -O --dir "$WORK/ref-store" --runs "$RUNS_LIVE" \
        --seed "$SEED" "$SRC" > "$WORK/ref.report" 2>&1 \
        || { cat "$WORK/ref.report"; die "reference batch failed"; }
    grep -v '^batch complete:' "$WORK/ref.report" > "$WORK/ref.estimates"

    start_server() {
        local attempt i
        for attempt in 1 2 3 4 5; do
            "$BIN" serve --tcp "$PORT" --store-root "$STORE" \
                >> "$WORK/server.log" 2>&1 &
            SERVER_PID=$!
            for i in $(seq 1 100); do
                if "$BIN" client metrics --connect "$ADDR" \
                    > /dev/null 2>&1; then
                    return 0
                fi
                kill -0 "$SERVER_PID" 2>/dev/null || break
                sleep 0.1
            done
            kill -9 "$SERVER_PID" 2>/dev/null
            wait "$SERVER_PID" 2>/dev/null
            sleep 0.3
        done
        die "server would not come up on $ADDR"
    }

    submit_tenant() {
        # every job is retried until accepted: through NET001 queue-full
        # rejections AND through windows where the server is dead
        local tenant="$1" j job
        for j in $(seq 1 "$JOBS_PER_TENANT"); do
            job="job$(printf '%04d' "$j")"
            until "$BIN" client submit --connect "$ADDR" \
                --tenant "$tenant" --job "$job" --file "$SRC" \
                --runs "$RUNS_LIVE" --seed "$SEED" > /dev/null 2>&1; do
                sleep 0.05
            done
        done
    }

    TOTAL=$((TENANTS * JOBS_PER_TENANT))
    say "live soak: $TOTAL jobs over $TENANTS tenants, $KILLS seeded kills, port $PORT"
    start_server

    SUBMITTER_PIDS=""
    for t in $(seq 1 "$TENANTS"); do
        submit_tenant "tenant$t" &
        SUBMITTER_PIDS="$SUBMITTER_PIDS $!"
    done

    # seeded kill schedule, spread over the submission window; each kill
    # lands on a live loaded server and the restart resumes its store
    kills_done=0
    for k in $(seq 0 $((KILLS - 1))); do
        delay=$(awk -v k="$k" 'BEGIN { printf "%.3f", 0.6 + (k % 5) * 0.17 }')
        sleep "$delay"
        kill -9 "$SERVER_PID" 2>/dev/null || break
        wait "$SERVER_PID" 2>/dev/null
        kills_done=$((kills_done + 1))
        say "kill $((k + 1))/$KILLS after ${delay}s; restarting"
        start_server
    done
    [ "$kills_done" -ge "$KILLS" ] || die "only $kills_done of $KILLS kills landed"

    for pid in $SUBMITTER_PIDS; do
        wait "$pid" || die "a submitter exited nonzero"
    done
    say "all $TOTAL submissions accepted (with retries); draining"

    # drain: every job must reach `done` (counters reset on restart, so
    # poll per-job status rather than the metrics counters)
    deadline=$(($(date +%s) + 600))
    for t in $(seq 1 "$TENANTS"); do
        for j in $(seq 1 "$JOBS_PER_TENANT"); do
            job="job$(printf '%04d' "$j")"
            while :; do
                state="$("$BIN" client status --connect "$ADDR" \
                    --tenant "tenant$t" --job "$job" 2>/dev/null \
                    | awk '{print $1}')"
                [ "$state" = "done" ] && break
                [ "$(date +%s)" -lt "$deadline" ] \
                    || die "tenant$t/$job stuck in state '${state:-unreachable}'"
                sleep 0.2
            done
        done
    done
    say "all $TOTAL jobs done; verifying reports against the reference"

    failures=0
    for t in $(seq 1 "$TENANTS"); do
        for j in $(seq 1 "$JOBS_PER_TENANT"); do
            job="job$(printf '%04d' "$j")"
            "$BIN" client result --connect "$ADDR" --tenant "tenant$t" \
                --job "$job" > "$WORK/out.report" 2>/dev/null \
                || die "result fetch failed for tenant$t/$job"
            # the server report has no trailing newline; normalize both
            if ! diff -q <(printf '%s\n' "$(cat "$WORK/ref.estimates")") \
                    <(printf '%s\n' "$(cat "$WORK/out.report")") > /dev/null; then
                say "tenant$t/$job: report differs from reference"
                mkdir -p "$ARTIFACTS/live-tenant$t-$job"
                cp "$WORK/out.report" "$WORK/ref.estimates" \
                    "$ARTIFACTS/live-tenant$t-$job/" 2>/dev/null
                failures=$((failures + 1))
            fi
        done
    done

    kill -9 "$SERVER_PID" 2>/dev/null
    wait "$SERVER_PID" 2>/dev/null
    SERVER_PID=""
    if [ "$failures" -ne 0 ]; then
        cp "$WORK/server.log" "$ARTIFACTS/" 2>/dev/null
        die "$failures of $TOTAL job reports diverged; artifacts in $ARTIFACTS/"
    fi
    say "live soak ok: $TOTAL jobs, $kills_done kills, zero lost completed runs"
    exit 0
fi

# ---------------------------------------------------------------------
# MODE=exhaust: flood + injected ENOSPC + slowloris against a governed
# server; the server must shed, recover, GC, and never crash
# ---------------------------------------------------------------------
if [ "${MODE:-}" = "exhaust" ]; then
    PORT="${PORT:-7389}"
    ADDR="127.0.0.1:$PORT"
    BASELINE_JOBS="${BASELINE_JOBS:-15}"
    LOADED_JOBS="${LOADED_JOBS:-15}"
    FLOODERS="${FLOODERS:-1}"
    SLOW_CLIENTS="${SLOW_CLIENTS:-4}"
    MIN_WINDOWS="${MIN_WINDOWS:-3}"
    RUNS_EXH="${RUNS_EXH:-5}"
    SEED_EXH="${SEED_EXH:-7}"
    MAX_STORE_BYTES="${MAX_STORE_BYTES:-2097152}"
    EXH_FAULTS="${EXH_FAULTS:-enospc:1.0,seed:11}"
    WINDOW_SECONDS="${WINDOW_SECONDS:-1.0}"
    P99_FLOOR="${P99_FLOOR:-2.0}"

    WORK="$(mktemp -d "${TMPDIR:-/tmp}/crash-soak-exhaust.XXXXXX")"
    SERVER_PID=""
    cleanup() {
        touch "$WORK/stop" 2>/dev/null
        [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
        wait 2>/dev/null
        rm -rf "$WORK"
    }
    trap cleanup EXIT
    STORE="$WORK/stores"
    SRC="$WORK/fig1.f"
    "$BIN" demo fig1 > "$SRC" || die "could not emit demo source"

    # one server for the whole soak: governed admission, GC on, short
    # frame deadline, and the ENOSPC pulse spec armed — SIGUSR1 opens
    # a disk-fault window (every durable write fails), SIGUSR2 closes
    # it and the pressure breaker recovers via its probe writes
    S89_FAULTS_PULSE="$EXH_FAULTS" "$BIN" serve --tcp "$PORT" \
        --store-root "$STORE" \
        --rate 20 --burst 5 --max-tenant-jobs 32 \
        --retain-done 1 --max-store-bytes "$MAX_STORE_BYTES" \
        --max-conns 64 --recv-timeout 3 \
        >> "$WORK/server.log" 2>&1 &
    SERVER_PID=$!
    for i in $(seq 1 100); do
        "$BIN" client metrics --connect "$ADDR" > /dev/null 2>&1 && break
        kill -0 "$SERVER_PID" 2>/dev/null || die "server died on startup"
        sleep 0.1
        [ "$i" -lt 100 ] || die "server would not come up on $ADDR"
    done

    metric() {
        "$BIN" client metrics --connect "$ADDR" 2>/dev/null \
            | awk -v m="$1" '$1 == m { print $2; exit }'
    }

    alive() {
        kill -0 "$SERVER_PID" 2>/dev/null \
            || { cp "$WORK/server.log" "$ARTIFACTS/" 2>/dev/null; \
                 die "server crashed ($1); log in $ARTIFACTS/"; }
    }

    # submit $2 jobs as the well-behaved tenant and append each job's
    # wall latency (ms, submit with retries through a terminal state)
    # to $3; `unknown` after acceptance means done-and-GC-collected
    measure() {
        local prefix="$1" count="$2" out="$3" j job t0 t1 state deadline
        for j in $(seq 1 "$count"); do
            job="$prefix$(printf '%03d' "$j")"
            t0=$(date +%s%N)
            "$BIN" client submit --connect "$ADDR" --tenant good \
                --job "$job" --file "$SRC" --runs "$RUNS_EXH" \
                --seed "$SEED_EXH" --retries 10 > /dev/null 2>&1 \
                || die "good/$job not accepted after retries"
            deadline=$(($(date +%s) + 120))
            while :; do
                state="$("$BIN" client status --connect "$ADDR" \
                    --tenant good --job "$job" 2>/dev/null \
                    | awk '{print $1}')"
                case "$state" in
                    done|unknown) break ;;
                    failed|expired) die "good/$job entered state '$state'" ;;
                esac
                [ "$(date +%s)" -lt "$deadline" ] \
                    || die "good/$job stuck in state '${state:-unreachable}'"
                sleep 0.05
            done
            t1=$(date +%s%N)
            printf '%d\n' $(((t1 - t0) / 1000000)) >> "$out"
        done
    }

    # flooding tenant: hammer submissions with no retry and no pacing;
    # rejections (NET001/NET004/SRV007) are the expected steady state,
    # but every ACCEPTED flood job is recorded and must later finish
    flood() {
        local tenant="$1" i=0 job
        : > "$WORK/accepted-$tenant"
        while [ ! -f "$WORK/stop" ]; do
            i=$((i + 1))
            job="f$(printf '%05d' "$i")"
            if "$BIN" client submit --connect "$ADDR" --tenant "$tenant" \
                --job "$job" --file "$SRC" --runs "$RUNS_EXH" \
                --seed "$SEED_EXH" > /dev/null 2>&1; then
                printf '%s\n' "$job" >> "$WORK/accepted-$tenant"
            fi
        done
    }

    # open/close $MIN_WINDOWS ENOSPC windows against the live server;
    # the flood guarantees durable writes are attempted inside each
    # window, so each one enters (and then exits) disk pressure
    windows_driver() {
        local w
        for w in $(seq 1 "$MIN_WINDOWS"); do
            sleep 1.2
            kill -USR1 "$SERVER_PID" 2>/dev/null || return
            sleep "$WINDOW_SECONDS"
            kill -USR2 "$SERVER_PID" 2>/dev/null || return
        done
    }

    # slowloris: hold a connection open and drip one byte slower than
    # the frame deadline; the server must cut us, not hang a thread
    slow_drip() {
        while [ ! -f "$WORK/stop" ]; do
            (
                exec 3<>"/dev/tcp/127.0.0.1/$PORT" || exit 0
                while [ ! -f "$WORK/stop" ]; do
                    printf 's' >&3 2>/dev/null || exit 0
                    sleep 0.8
                done
            ) 2>/dev/null
            sleep 0.2
        done
    }

    say "exhaust soak: $FLOODERS flooder(s), $SLOW_CLIENTS slow clients, faults=$EXH_FAULTS, port $PORT"

    say "baseline: $BASELINE_JOBS well-behaved jobs (no flood)"
    measure base "$BASELINE_JOBS" "$WORK/lat-base"
    alive "during baseline"

    LOAD_PIDS=""
    for f in $(seq 1 "$FLOODERS"); do
        flood "flood$f" &
        LOAD_PIDS="$LOAD_PIDS $!"
    done
    for s in $(seq 1 "$SLOW_CLIENTS"); do
        slow_drip &
        LOAD_PIDS="$LOAD_PIDS $!"
    done
    windows_driver &
    WINDOWS_PID=$!
    sleep 2   # let the flood and the drips bite before sampling

    say "loaded: $LOADED_JOBS well-behaved jobs under flood + ENOSPC windows"
    measure load "$LOADED_JOBS" "$WORK/lat-load"
    alive "during flood"

    wait "$WINDOWS_PID" 2>/dev/null   # all windows closed (USR2 sent)
    touch "$WORK/stop"
    for pid in $LOAD_PIDS; do wait "$pid" 2>/dev/null; done
    accepted=$(cat "$WORK"/accepted-flood* 2>/dev/null | wc -l)
    say "flood stopped; $accepted flood jobs were accepted; draining them"

    # zero lost accepted jobs: with no kills in this mode, every
    # accepted flood job must reach done (or unknown once GC collects
    # the finished shard) — anything stuck queued/running is a loss
    deadline=$(($(date +%s) + 180))
    for f in $(seq 1 "$FLOODERS"); do
        while IFS= read -r job; do
            while :; do
                state="$("$BIN" client status --connect "$ADDR" \
                    --tenant "flood$f" --job "$job" 2>/dev/null \
                    | awk '{print $1}')"
                case "$state" in done|unknown) break ;; esac
                [ "$(date +%s)" -lt "$deadline" ] \
                    || die "flood$f/$job stuck in state '${state:-unreachable}'"
                sleep 0.1
            done
        done < "$WORK/accepted-flood$f"
    done
    alive "after drain"

    windows=$(metric s89_disk_pressure_windows)
    [ -n "$windows" ] || die "could not scrape s89_disk_pressure_windows"
    [ "$windows" -ge "$MIN_WINDOWS" ] \
        || die "only $windows disk-pressure windows (need >= $MIN_WINDOWS)"
    timed_out=$(metric s89_conns_timed_out)
    [ -n "$timed_out" ] && [ "$timed_out" -ge 1 ] \
        || die "no slow client was cut by the frame deadline (timed_out=${timed_out:-?})"

    # GC must pull the store back under the size bound once the load
    # drains; measured with du, not the server's own gauge
    deadline=$(($(date +%s) + 90))
    while :; do
        store_du=$(du -sb "$STORE" 2>/dev/null | awk '{print $1}')
        [ -n "$store_du" ] && [ "$store_du" -le "$MAX_STORE_BYTES" ] && break
        [ "$(date +%s)" -lt "$deadline" ] \
            || die "store still ${store_du:-?} bytes > $MAX_STORE_BYTES after GC"
        sleep 0.5
    done
    gc_collected=$(metric s89_gc_collected)

    # SLO: loaded p99 within 2x the unloaded baseline, with an absolute
    # floor so sub-100ms baselines don't turn jitter into a failure
    p99() {
        sort -n "$1" | awk '{ a[NR] = $1 }
            END { i = int(0.99 * NR + 0.999999); if (i < 1) i = 1; print a[i] }'
    }
    p99_base=$(p99 "$WORK/lat-base")
    p99_load=$(p99 "$WORK/lat-load")
    awk -v l="$p99_load" -v b="$p99_base" -v f="$P99_FLOOR" 'BEGIN {
        lim = 2 * b; fl = f * 1000; if (lim < fl) lim = fl;
        exit !(l <= lim) }' \
        || die "well-behaved p99 ${p99_load}ms > max(2 x ${p99_base}ms, ${P99_FLOOR}s)"

    alive "at end"
    kill "$SERVER_PID" 2>/dev/null
    wait "$SERVER_PID" 2>/dev/null
    SERVER_PID=""
    say "exhaust soak ok: $accepted flood jobs accepted and drained, $windows disk-pressure windows, $timed_out slow clients cut, gc collected ${gc_collected:-?} jobs (store ${store_du} <= ${MAX_STORE_BYTES} bytes), p99 ${p99_base}ms -> ${p99_load}ms"
    exit 0
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/crash-soak.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT
SRC="$WORK/loops.f"
"$BIN" demo loops > "$SRC" || die "could not emit demo source"

# Reference: one uninterrupted batch. Everything else must match it.
say "reference batch: $RUNS runs, seed $SEED"
"$BIN" batch --dir "$WORK/ref-store" --runs "$RUNS" --seed "$SEED" \
    --export "$WORK/ref.db" "$SRC" > "$WORK/ref.report" 2>&1 \
    || { cat "$WORK/ref.report"; die "reference batch failed"; }
grep -v '^batch complete:' "$WORK/ref.report" > "$WORK/ref.estimates"

failures=0
for k in $(seq 0 $((POINTS - 1))); do
    # Deterministic kill delay, spread across the batch's lifetime.
    delay=$(awk -v k="$k" 'BEGIN { printf "%.3f", 0.05 + k * 0.14 }')
    dir="$WORK/store-$k"

    # Fault-injected first attempt, SIGKILLed at the seeded point.  The
    # kill may land after completion for late points; the resume below is
    # then a durability/idempotency check rather than a recovery one.
    ( S89_FAULTS="$SOAK_FAULTS" timeout -s KILL "$delay" \
        "$BIN" batch --dir "$dir" --runs "$RUNS" --seed "$SEED" "$SRC"; \
      exit $? ) > "$WORK/kill-$k.log" 2>&1
    first_rc=$?

    # Clean resume: must finish the batch and reproduce the reference.
    "$BIN" batch --dir "$dir" --resume --runs "$RUNS" --seed "$SEED" \
        --export "$WORK/out-$k.db" "$SRC" > "$WORK/resume-$k.log" 2>&1
    rc=$?

    point_ok=1
    if [ "$rc" -ne 0 ]; then
        say "point $k (kill@${delay}s, first rc=$first_rc): resume exited $rc"
        point_ok=0
    elif ! cmp -s "$WORK/out-$k.db" "$WORK/ref.db"; then
        say "point $k (kill@${delay}s): exported database differs from reference"
        point_ok=0
    else
        grep -v '^batch complete:' "$WORK/resume-$k.log" > "$WORK/out-$k.estimates"
        if ! diff -q "$WORK/ref.estimates" "$WORK/out-$k.estimates" >/dev/null; then
            say "point $k (kill@${delay}s): estimates differ from reference"
            point_ok=0
        fi
    fi

    if [ "$point_ok" -eq 1 ]; then
        say "point $k (kill@${delay}s, first rc=$first_rc): ok"
    else
        failures=$((failures + 1))
        mkdir -p "$ARTIFACTS/point-$k"
        cp -r "$dir" "$ARTIFACTS/point-$k/store" 2>/dev/null
        cp "$WORK/kill-$k.log" "$WORK/resume-$k.log" "$WORK/out-$k.db" \
           "$ARTIFACTS/point-$k/" 2>/dev/null
        diff "$WORK/ref.estimates" "$WORK/out-$k.estimates" \
            > "$ARTIFACTS/point-$k/estimates.diff" 2>&1
    fi
done

if [ "$failures" -ne 0 ]; then
    cp "$WORK/ref.db" "$WORK/ref.report" "$ARTIFACTS/" 2>/dev/null
    die "$failures of $POINTS kill points diverged; artifacts in $ARTIFACTS/"
fi
say "all $POINTS kill points recovered byte-identical estimates"
