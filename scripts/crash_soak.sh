#!/usr/bin/env bash
# Crash-recovery soak for `ptranc batch`.
#
# Builds a reference run (no crash), then for each of $POINTS seeded kill
# points: starts a fault-injected batch over the same workload, SIGKILLs it
# at a deterministic delay, resumes with `--resume`, and asserts that
#   * the resumed batch exits 0,
#   * the exported profile database is byte-identical to the reference,
#   * the printed estimates are identical to the reference report
#     (modulo the trailer line that names the per-point store directory).
# Any mismatch copies the surviving store (snapshot + WAL) into
# $ARTIFACTS/ for post-mortem and fails the job.
#
# Tunables (env): POINTS (kill points, default 20), RUNS (profiled runs,
# default 120), SEED (base VM seed, default 7), SOAK_FAULTS (S89_FAULTS
# spec injected into the killed attempt only, default wal_torn:0.01,seed:3),
# ARTIFACTS (default soak-artifacts).

set -u

POINTS="${POINTS:-20}"
RUNS="${RUNS:-120}"
SEED="${SEED:-7}"
SOAK_FAULTS="${SOAK_FAULTS:-wal_torn:0.01,seed:3}"
ARTIFACTS="${ARTIFACTS:-soak-artifacts}"

say() { printf 'soak: %s\n' "$*"; }
die() { printf 'soak: FATAL: %s\n' "$*" >&2; exit 1; }

command -v dune >/dev/null || die "dune not on PATH"
dune build bin/ptranc.exe || die "build failed"
BIN="$(pwd)/_build/default/bin/ptranc.exe"
[ -x "$BIN" ] || die "missing $BIN"

WORK="$(mktemp -d "${TMPDIR:-/tmp}/crash-soak.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT
SRC="$WORK/loops.f"
"$BIN" demo loops > "$SRC" || die "could not emit demo source"

# Reference: one uninterrupted batch. Everything else must match it.
say "reference batch: $RUNS runs, seed $SEED"
"$BIN" batch --dir "$WORK/ref-store" --runs "$RUNS" --seed "$SEED" \
    --export "$WORK/ref.db" "$SRC" > "$WORK/ref.report" 2>&1 \
    || { cat "$WORK/ref.report"; die "reference batch failed"; }
grep -v '^batch complete:' "$WORK/ref.report" > "$WORK/ref.estimates"

failures=0
for k in $(seq 0 $((POINTS - 1))); do
    # Deterministic kill delay, spread across the batch's lifetime.
    delay=$(awk -v k="$k" 'BEGIN { printf "%.3f", 0.05 + k * 0.14 }')
    dir="$WORK/store-$k"

    # Fault-injected first attempt, SIGKILLed at the seeded point.  The
    # kill may land after completion for late points; the resume below is
    # then a durability/idempotency check rather than a recovery one.
    ( S89_FAULTS="$SOAK_FAULTS" timeout -s KILL "$delay" \
        "$BIN" batch --dir "$dir" --runs "$RUNS" --seed "$SEED" "$SRC"; \
      exit $? ) > "$WORK/kill-$k.log" 2>&1
    first_rc=$?

    # Clean resume: must finish the batch and reproduce the reference.
    "$BIN" batch --dir "$dir" --resume --runs "$RUNS" --seed "$SEED" \
        --export "$WORK/out-$k.db" "$SRC" > "$WORK/resume-$k.log" 2>&1
    rc=$?

    point_ok=1
    if [ "$rc" -ne 0 ]; then
        say "point $k (kill@${delay}s, first rc=$first_rc): resume exited $rc"
        point_ok=0
    elif ! cmp -s "$WORK/out-$k.db" "$WORK/ref.db"; then
        say "point $k (kill@${delay}s): exported database differs from reference"
        point_ok=0
    else
        grep -v '^batch complete:' "$WORK/resume-$k.log" > "$WORK/out-$k.estimates"
        if ! diff -q "$WORK/ref.estimates" "$WORK/out-$k.estimates" >/dev/null; then
            say "point $k (kill@${delay}s): estimates differ from reference"
            point_ok=0
        fi
    fi

    if [ "$point_ok" -eq 1 ]; then
        say "point $k (kill@${delay}s, first rc=$first_rc): ok"
    else
        failures=$((failures + 1))
        mkdir -p "$ARTIFACTS/point-$k"
        cp -r "$dir" "$ARTIFACTS/point-$k/store" 2>/dev/null
        cp "$WORK/kill-$k.log" "$WORK/resume-$k.log" "$WORK/out-$k.db" \
           "$ARTIFACTS/point-$k/" 2>/dev/null
        diff "$WORK/ref.estimates" "$WORK/out-$k.estimates" \
            > "$ARTIFACTS/point-$k/estimates.diff" 2>&1
    fi
done

if [ "$failures" -ne 0 ]; then
    cp "$WORK/ref.db" "$WORK/ref.report" "$ARTIFACTS/" 2>/dev/null
    die "$failures of $POINTS kill points diverged; artifacts in $ARTIFACTS/"
fi
say "all $POINTS kill points recovered byte-identical estimates"
