#!/usr/bin/env bash
# Crash-recovery soak for `ptranc batch`.
#
# Builds a reference run (no crash), then for each of $POINTS seeded kill
# points: starts a fault-injected batch over the same workload, SIGKILLs it
# at a deterministic delay, resumes with `--resume`, and asserts that
#   * the resumed batch exits 0,
#   * the exported profile database is byte-identical to the reference,
#   * the printed estimates are identical to the reference report
#     (modulo the trailer line that names the per-point store directory).
# Any mismatch copies the surviving store (snapshot + WAL) into
# $ARTIFACTS/ for post-mortem and fails the job.
#
# Tunables (env): POINTS (kill points, default 20), RUNS (profiled runs,
# default 120), SEED (base VM seed, default 7), SOAK_FAULTS (S89_FAULTS
# spec injected into the killed attempt only, default wal_torn:0.01,seed:3),
# ARTIFACTS (default soak-artifacts).
#
# MODE=live runs the TCP-service soak instead: a `ptranc serve --tcp`
# server under live concurrent load from $TENANTS parallel submitters
# ($JOBS_PER_TENANT jobs each, every submission retried through NET001
# rejections and server-down windows), SIGKILLed $KILLS times on a
# seeded schedule and restarted against the same store root.  After the
# load drains, every job must reach `done` and its report must be
# byte-identical to an uninterrupted `ptranc batch -O` reference —
# i.e. zero completed runs lost across any kill.  Live tunables:
# TENANTS (default 4), JOBS_PER_TENANT (default 500), KILLS (default
# 10), RUNS_LIVE (runs per job, default 5), PORT (default 7189).

set -u

POINTS="${POINTS:-20}"
RUNS="${RUNS:-120}"
SEED="${SEED:-7}"
SOAK_FAULTS="${SOAK_FAULTS:-wal_torn:0.01,seed:3}"
ARTIFACTS="${ARTIFACTS:-soak-artifacts}"

say() { printf 'soak: %s\n' "$*"; }
die() { printf 'soak: FATAL: %s\n' "$*" >&2; exit 1; }

command -v dune >/dev/null || die "dune not on PATH"
dune build bin/ptranc.exe || die "build failed"
BIN="$(pwd)/_build/default/bin/ptranc.exe"
[ -x "$BIN" ] || die "missing $BIN"

# ---------------------------------------------------------------------
# MODE=live: kill a loaded TCP server, prove no completed run is lost
# ---------------------------------------------------------------------
if [ "${MODE:-}" = "live" ]; then
    TENANTS="${TENANTS:-4}"
    JOBS_PER_TENANT="${JOBS_PER_TENANT:-500}"
    KILLS="${KILLS:-10}"
    RUNS_LIVE="${RUNS_LIVE:-5}"
    PORT="${PORT:-7189}"
    ADDR="127.0.0.1:$PORT"

    WORK="$(mktemp -d "${TMPDIR:-/tmp}/crash-soak-live.XXXXXX")"
    SERVER_PID=""
    cleanup() {
        [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
        wait 2>/dev/null
        rm -rf "$WORK"
    }
    trap cleanup EXIT
    STORE="$WORK/stores"
    SRC="$WORK/fig1.f"
    "$BIN" demo fig1 > "$SRC" || die "could not emit demo source"

    # the server runs the optimized cost model; `batch -O` is the
    # uninterrupted reference every job's report must reproduce
    "$BIN" batch -O --dir "$WORK/ref-store" --runs "$RUNS_LIVE" \
        --seed "$SEED" "$SRC" > "$WORK/ref.report" 2>&1 \
        || { cat "$WORK/ref.report"; die "reference batch failed"; }
    grep -v '^batch complete:' "$WORK/ref.report" > "$WORK/ref.estimates"

    start_server() {
        local attempt i
        for attempt in 1 2 3 4 5; do
            "$BIN" serve --tcp "$PORT" --store-root "$STORE" \
                >> "$WORK/server.log" 2>&1 &
            SERVER_PID=$!
            for i in $(seq 1 100); do
                if "$BIN" client metrics --connect "$ADDR" \
                    > /dev/null 2>&1; then
                    return 0
                fi
                kill -0 "$SERVER_PID" 2>/dev/null || break
                sleep 0.1
            done
            kill -9 "$SERVER_PID" 2>/dev/null
            wait "$SERVER_PID" 2>/dev/null
            sleep 0.3
        done
        die "server would not come up on $ADDR"
    }

    submit_tenant() {
        # every job is retried until accepted: through NET001 queue-full
        # rejections AND through windows where the server is dead
        local tenant="$1" j job
        for j in $(seq 1 "$JOBS_PER_TENANT"); do
            job="job$(printf '%04d' "$j")"
            until "$BIN" client submit --connect "$ADDR" \
                --tenant "$tenant" --job "$job" --file "$SRC" \
                --runs "$RUNS_LIVE" --seed "$SEED" > /dev/null 2>&1; do
                sleep 0.05
            done
        done
    }

    TOTAL=$((TENANTS * JOBS_PER_TENANT))
    say "live soak: $TOTAL jobs over $TENANTS tenants, $KILLS seeded kills, port $PORT"
    start_server

    SUBMITTER_PIDS=""
    for t in $(seq 1 "$TENANTS"); do
        submit_tenant "tenant$t" &
        SUBMITTER_PIDS="$SUBMITTER_PIDS $!"
    done

    # seeded kill schedule, spread over the submission window; each kill
    # lands on a live loaded server and the restart resumes its store
    kills_done=0
    for k in $(seq 0 $((KILLS - 1))); do
        delay=$(awk -v k="$k" 'BEGIN { printf "%.3f", 0.6 + (k % 5) * 0.17 }')
        sleep "$delay"
        kill -9 "$SERVER_PID" 2>/dev/null || break
        wait "$SERVER_PID" 2>/dev/null
        kills_done=$((kills_done + 1))
        say "kill $((k + 1))/$KILLS after ${delay}s; restarting"
        start_server
    done
    [ "$kills_done" -ge "$KILLS" ] || die "only $kills_done of $KILLS kills landed"

    for pid in $SUBMITTER_PIDS; do
        wait "$pid" || die "a submitter exited nonzero"
    done
    say "all $TOTAL submissions accepted (with retries); draining"

    # drain: every job must reach `done` (counters reset on restart, so
    # poll per-job status rather than the metrics counters)
    deadline=$(($(date +%s) + 600))
    for t in $(seq 1 "$TENANTS"); do
        for j in $(seq 1 "$JOBS_PER_TENANT"); do
            job="job$(printf '%04d' "$j")"
            while :; do
                state="$("$BIN" client status --connect "$ADDR" \
                    --tenant "tenant$t" --job "$job" 2>/dev/null \
                    | awk '{print $1}')"
                [ "$state" = "done" ] && break
                [ "$(date +%s)" -lt "$deadline" ] \
                    || die "tenant$t/$job stuck in state '${state:-unreachable}'"
                sleep 0.2
            done
        done
    done
    say "all $TOTAL jobs done; verifying reports against the reference"

    failures=0
    for t in $(seq 1 "$TENANTS"); do
        for j in $(seq 1 "$JOBS_PER_TENANT"); do
            job="job$(printf '%04d' "$j")"
            "$BIN" client result --connect "$ADDR" --tenant "tenant$t" \
                --job "$job" > "$WORK/out.report" 2>/dev/null \
                || die "result fetch failed for tenant$t/$job"
            # the server report has no trailing newline; normalize both
            if ! diff -q <(printf '%s\n' "$(cat "$WORK/ref.estimates")") \
                    <(printf '%s\n' "$(cat "$WORK/out.report")") > /dev/null; then
                say "tenant$t/$job: report differs from reference"
                mkdir -p "$ARTIFACTS/live-tenant$t-$job"
                cp "$WORK/out.report" "$WORK/ref.estimates" \
                    "$ARTIFACTS/live-tenant$t-$job/" 2>/dev/null
                failures=$((failures + 1))
            fi
        done
    done

    kill -9 "$SERVER_PID" 2>/dev/null
    wait "$SERVER_PID" 2>/dev/null
    SERVER_PID=""
    if [ "$failures" -ne 0 ]; then
        cp "$WORK/server.log" "$ARTIFACTS/" 2>/dev/null
        die "$failures of $TOTAL job reports diverged; artifacts in $ARTIFACTS/"
    fi
    say "live soak ok: $TOTAL jobs, $kills_done kills, zero lost completed runs"
    exit 0
fi

WORK="$(mktemp -d "${TMPDIR:-/tmp}/crash-soak.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT
SRC="$WORK/loops.f"
"$BIN" demo loops > "$SRC" || die "could not emit demo source"

# Reference: one uninterrupted batch. Everything else must match it.
say "reference batch: $RUNS runs, seed $SEED"
"$BIN" batch --dir "$WORK/ref-store" --runs "$RUNS" --seed "$SEED" \
    --export "$WORK/ref.db" "$SRC" > "$WORK/ref.report" 2>&1 \
    || { cat "$WORK/ref.report"; die "reference batch failed"; }
grep -v '^batch complete:' "$WORK/ref.report" > "$WORK/ref.estimates"

failures=0
for k in $(seq 0 $((POINTS - 1))); do
    # Deterministic kill delay, spread across the batch's lifetime.
    delay=$(awk -v k="$k" 'BEGIN { printf "%.3f", 0.05 + k * 0.14 }')
    dir="$WORK/store-$k"

    # Fault-injected first attempt, SIGKILLed at the seeded point.  The
    # kill may land after completion for late points; the resume below is
    # then a durability/idempotency check rather than a recovery one.
    ( S89_FAULTS="$SOAK_FAULTS" timeout -s KILL "$delay" \
        "$BIN" batch --dir "$dir" --runs "$RUNS" --seed "$SEED" "$SRC"; \
      exit $? ) > "$WORK/kill-$k.log" 2>&1
    first_rc=$?

    # Clean resume: must finish the batch and reproduce the reference.
    "$BIN" batch --dir "$dir" --resume --runs "$RUNS" --seed "$SEED" \
        --export "$WORK/out-$k.db" "$SRC" > "$WORK/resume-$k.log" 2>&1
    rc=$?

    point_ok=1
    if [ "$rc" -ne 0 ]; then
        say "point $k (kill@${delay}s, first rc=$first_rc): resume exited $rc"
        point_ok=0
    elif ! cmp -s "$WORK/out-$k.db" "$WORK/ref.db"; then
        say "point $k (kill@${delay}s): exported database differs from reference"
        point_ok=0
    else
        grep -v '^batch complete:' "$WORK/resume-$k.log" > "$WORK/out-$k.estimates"
        if ! diff -q "$WORK/ref.estimates" "$WORK/out-$k.estimates" >/dev/null; then
            say "point $k (kill@${delay}s): estimates differ from reference"
            point_ok=0
        fi
    fi

    if [ "$point_ok" -eq 1 ]; then
        say "point $k (kill@${delay}s, first rc=$first_rc): ok"
    else
        failures=$((failures + 1))
        mkdir -p "$ARTIFACTS/point-$k"
        cp -r "$dir" "$ARTIFACTS/point-$k/store" 2>/dev/null
        cp "$WORK/kill-$k.log" "$WORK/resume-$k.log" "$WORK/out-$k.db" \
           "$ARTIFACTS/point-$k/" 2>/dev/null
        diff "$WORK/ref.estimates" "$WORK/out-$k.estimates" \
            > "$ARTIFACTS/point-$k/estimates.diff" 2>&1
    fi
done

if [ "$failures" -ne 0 ]; then
    cp "$WORK/ref.db" "$WORK/ref.report" "$ARTIFACTS/" 2>/dev/null
    die "$failures of $POINTS kill points diverged; artifacts in $ARTIFACTS/"
fi
say "all $POINTS kill points recovered byte-identical estimates"
