(* Tests for s89_exec: the Domain work pool and the §5-self-chunking
   parallel map.

   The Domain-backed paths are exercised with [~force_parallel:true] so
   they run even on single-core CI hosts (where [create] would otherwise
   gracefully fall back to the sequential path).  The pool's worker count
   for the cross-cutting determinism tests comes from the S89_DOMAINS
   environment variable (default 2) so CI can pin it. *)

open S89_exec
module Stats = S89_util.Stats

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let env_domains () =
  match Sys.getenv_opt "S89_DOMAINS" with
  | Some s -> ( match int_of_string_opt s with Some d when d > 0 -> d | _ -> 2)
  | None -> 2

(* a pool that really spawns domains, even on a 1-core host *)
let par_pool ?domains () =
  let domains = match domains with Some d -> d | None -> env_domains () in
  Pool.create ~force_parallel:true ~domains ()

(* ---------------- Pool ---------------- *)

let pool_create_validates () =
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Pool.create: domains must be positive") (fun () ->
      ignore (Pool.create ~domains:0 ()));
  Alcotest.check_raises "negative domains"
    (Invalid_argument "Pool.create: domains must be positive") (fun () ->
      ignore (Pool.create ~domains:(-3) ()))

let pool_sequential_path () =
  (* domains = 1 never spawns: every item runs on the calling domain *)
  let self = Domain.self () in
  let pool = Pool.create ~domains:1 () in
  check cb "domains=1 is sequential" false (Pool.parallel pool);
  let doms = Pool.map pool (fun _ -> Domain.self ()) (Array.make 50 ()) in
  Array.iter (fun d -> check cb "ran on calling domain" true (d = self)) doms;
  (* force_parallel cannot make a 1-worker pool spawn *)
  check cb "forced 1-domain pool still sequential" false
    (Pool.parallel (Pool.create ~force_parallel:true ~domains:1 ()));
  (* the single-core fallback matches the host *)
  check cb "fallback tracks recommended_domain_count"
    (Domain.recommended_domain_count () > 1)
    (Pool.parallel (Pool.create ~domains:4 ()))

let pool_map_empty_and_single () =
  let pool = par_pool () in
  check (Alcotest.array ci) "empty" [||] (Pool.map pool (fun x -> x + 1) [||]);
  check (Alcotest.array ci) "single" [| 43 |] (Pool.map pool (fun x -> x + 1) [| 42 |])

let pool_map_matches_sequential () =
  let f x = (x * x) + 1 in
  (* item count far below and far above the worker count *)
  List.iter
    (fun (n, domains) ->
      let input = Array.init n (fun i -> i) in
      check (Alcotest.array ci)
        (Printf.sprintf "n=%d domains=%d" n domains)
        (Array.map f input)
        (Pool.map (par_pool ~domains ()) f input))
    [ (3, 8); (2000, 2); (100, 3) ]

let pool_mapi_and_list () =
  let pool = par_pool () in
  check (Alcotest.array ci) "mapi" [| 10; 21; 32 |]
    (Pool.mapi pool (fun i x -> (10 * x) + i) [| 1; 2; 3 |]);
  check (Alcotest.list ci) "map_list" [ 2; 4; 6 ]
    (Pool.map_list pool (fun x -> 2 * x) [ 1; 2; 3 ])

let pool_fold_deterministic_order () =
  (* non-commutative reduction: order would show in the result *)
  let input = Array.init 100 string_of_int in
  let seq = Array.fold_left (fun acc s -> acc ^ "," ^ s) "" input in
  let got =
    Pool.fold (par_pool ()) (fun s -> s) (fun acc s -> acc ^ "," ^ s) "" input
  in
  check Alcotest.string "left-to-right reduction" seq got

let pool_exception_propagates () =
  let f i = if i mod 7 = 3 then failwith (Printf.sprintf "boom %d" i) else i in
  let attempt pool =
    match Pool.map pool f (Array.init 50 (fun i -> i)) with
    | _ -> Alcotest.fail "expected an exception"
    | exception Failure msg -> msg
  in
  (* smallest failing index wins, independent of scheduling *)
  check Alcotest.string "parallel: smallest index" "boom 3" (attempt (par_pool ()));
  check Alcotest.string "sequential: same exception" "boom 3"
    (attempt (Pool.create ~domains:1 ()))

let pool_parallel_really_spawns () =
  (* with forced parallelism and items that outnumber workers, at least
     the pool must still compute everything correctly while worker
     domains exist; verify some item may run off the calling domain by
     checking the domain set is consistent (1 or more distinct ids) *)
  let pool = par_pool ~domains:2 () in
  check cb "forced pool is parallel" true (Pool.parallel pool);
  let doms = Pool.map pool (fun _ -> Domain.self ()) (Array.make 64 ()) in
  check cb "all items ran" true (Array.length doms = 64)

(* ---------------- Chunked ---------------- *)

let chunked_matches_sequential () =
  let f x = (3 * x) - 1 in
  let input = Array.init 500 (fun i -> i) in
  let expect = Array.map f input in
  List.iter
    (fun (name, strategy) ->
      check (Alcotest.array ci) name expect
        (Chunked.map ~strategy (par_pool ()) f input))
    [
      ("fixed-8", Chunked.Fixed 8);
      ("fixed-0-clamps", Chunked.Fixed 0);
      ("static", Chunked.Static);
      ("kruskal-weiss", Chunked.default_strategy);
      ( "custom",
        Chunked.Custom
          (fun ~remaining ~workers ~mean:_ ~sigma:_ ->
            Stdlib.max 1 (remaining / (4 * workers))) );
    ]

let chunked_empty_single_sequential () =
  let pool = par_pool () in
  check (Alcotest.array ci) "empty" [||] (Chunked.map pool (fun x -> x) [||]);
  check (Alcotest.array ci) "single" [| 7 |] (Chunked.map pool (fun x -> x + 6) [| 1 |]);
  let seq = Pool.create ~domains:1 () in
  check (Alcotest.array ci) "sequential fallback" [| 2; 3 |]
    (Chunked.map seq (fun x -> x + 1) [| 1; 2 |]);
  check (Alcotest.list ci) "map_list" [ 2; 3 ]
    (Chunked.map_list pool (fun x -> x + 1) [ 1; 2 ])

let chunked_exception_propagates () =
  match
    Chunked.map ~strategy:(Chunked.Fixed 4) (par_pool ())
      (fun i -> if i = 11 then failwith "chunk boom" else i)
      (Array.init 40 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg -> check Alcotest.string "message survives" "chunk boom" msg

let chunked_kw_uses_variance () =
  (* the custom hook sees the online mean/sigma the KW default would use;
     sanity-check the plumbing: it is called with sane values and its
     answer is respected (results stay correct whatever it returns) *)
  let called = Atomic.make 0 in
  let strategy =
    Chunked.Custom
      (fun ~remaining ~workers ~mean ~sigma ->
        Atomic.incr called;
        if remaining <= 0 || workers <= 0 || mean < 0.0 || sigma < 0.0 then
          Alcotest.fail "bad online estimates";
        5)
  in
  let input = Array.init 300 (fun i -> i) in
  let got =
    Chunked.map ~strategy (par_pool ())
      (fun x ->
        (* spend a little time so the clock sees nonzero costs *)
        let acc = ref 0 in
        for i = 1 to 200 do
          acc := !acc + (i * x)
        done;
        !acc)
      input
  in
  check cb "results correct" true
    (got
    = Array.map
        (fun x ->
          let acc = ref 0 in
          for i = 1 to 200 do
            acc := !acc + (i * x)
          done;
          !acc)
        input);
  check cb "strategy consulted" true (Atomic.get called > 0)

let suite =
  [
    Alcotest.test_case "pool: create validates" `Quick pool_create_validates;
    Alcotest.test_case "pool: sequential path" `Quick pool_sequential_path;
    Alcotest.test_case "pool: empty/single" `Quick pool_map_empty_and_single;
    Alcotest.test_case "pool: matches sequential" `Quick pool_map_matches_sequential;
    Alcotest.test_case "pool: mapi/map_list" `Quick pool_mapi_and_list;
    Alcotest.test_case "pool: fold order" `Quick pool_fold_deterministic_order;
    Alcotest.test_case "pool: exception propagates" `Quick pool_exception_propagates;
    Alcotest.test_case "pool: parallel spawns" `Quick pool_parallel_really_spawns;
    Alcotest.test_case "chunked: matches sequential" `Quick chunked_matches_sequential;
    Alcotest.test_case "chunked: edge cases" `Quick chunked_empty_single_sequential;
    Alcotest.test_case "chunked: exception propagates" `Quick chunked_exception_propagates;
    Alcotest.test_case "chunked: online estimates" `Quick chunked_kw_uses_variance;
  ]
