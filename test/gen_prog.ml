(* The generator moved to lib/testgen so the fuzz harness can share it;
   this shim keeps the historical [Gen_prog] name for the test suites. *)
include S89_testgen.Gen_prog
