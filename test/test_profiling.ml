(* Tests for s89_profiling: basic blocks, condition sites, FREQ, smart and
   naive counter placement, reconstruction (the §3 correctness property:
   an optimized profile loses no information), and the database. *)

module Program = S89_frontend.Program
module Ir = S89_frontend.Ir
module Interp = S89_vm.Interp
module Cfg = S89_cfg.Cfg
module Label = S89_cfg.Label
module Ecfg = S89_cfg.Ecfg
open S89_profiling

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cf = Alcotest.float 1e-9

let fig1 () = Program.of_source (S89_workloads.Demos.fig1 ())

(* ---------------- Blocks ---------------- *)

let blocks_fig1 () =
  let p = Program.find (fig1 ()) "FIG1" in
  let b = Blocks.compute p.Program.cfg in
  (* ENTRY,M=,N= | IF(M) | IF(NLT) | IF(NGE) | CALL | CONT,STOP *)
  check ci "six blocks" 6 (Blocks.num_blocks b);
  check ci "entry chain" 3 (List.length (Blocks.members b (Blocks.block_of b 0)));
  check ci "same block" (Blocks.block_of b 0) (Blocks.block_of b 2);
  check cb "branch alone" true (Blocks.members b (Blocks.block_of b 3) = [ 3 ])

let blocks_partition () =
  List.iter
    (fun src ->
      let prog = Program.of_source src in
      List.iter
        (fun (p : Program.proc) ->
          let b = Blocks.compute p.Program.cfg in
          let seen = Array.make (Cfg.num_nodes p.Program.cfg) 0 in
          for blk = 0 to Blocks.num_blocks b - 1 do
            check ci "leader starts its block" (Blocks.leader b blk)
              (List.hd (Blocks.members b blk));
            List.iter
              (fun n ->
                check ci "block_of consistent" blk (Blocks.block_of b n);
                seen.(n) <- seen.(n) + 1)
              (Blocks.members b blk)
          done;
          Array.iter (fun c -> check ci "each node in exactly one block" 1 c) seen)
        (Program.procs prog))
    [ S89_workloads.Demos.fig1 (); S89_workloads.Demos.branchy ();
      S89_workloads.Demos.computed_goto () ]

(* ---------------- Analysis sites ---------------- *)

let sites_fig1 () =
  let a = Analysis.of_proc (Program.find (fig1 ()) "FIG1") in
  let ecfg = a.Analysis.ecfg in
  let start = Ecfg.start ecfg in
  let ph = Ecfg.preheader_of_header ecfg 3 in
  check cb "branch -> edge site" true
    (Analysis.site_of_condition a (3, Label.T) = Analysis.Edge_site (3, Label.T));
  check cb "preheader -> node site (header)" true
    (Analysis.site_of_condition a (ph, Ecfg.body_label) = Analysis.Node_site 3);
  check cb "start -> invocation site" true
    (Analysis.site_of_condition a (start, Label.U) = Analysis.Invocation_site);
  (* pseudo conditions never fire *)
  List.iter
    (fun ((u, l) as c) ->
      if Label.is_pseudo l then begin
        ignore u;
        check cb "pseudo -> never" true (Analysis.site_of_condition a c = Analysis.Never)
      end)
    a.Analysis.conditions

let exit_free_detection () =
  let prog =
    Program.of_source
      "      PROGRAM T\n\
       \      DO 10 I = 1, 10\n\
       \        X = X + 1.0\n\
       10    CONTINUE\n\
       \      DO 20 J = 1, 10\n\
       \        IF (X .GT. 5.0) GOTO 30\n\
       \        X = X + 1.0\n\
       20    CONTINUE\n\
       30    CONTINUE\n\
       \      END\n"
  in
  let a = Analysis.of_proc (Program.find prog "T") in
  let exit_free = Analysis.exit_free_do_headers a in
  (* exactly one of the two DO loops has no body exit *)
  check ci "one exit-free DO" 1 (List.length exit_free);
  let h = List.hd exit_free in
  match Analysis.do_meta a h with
  | Some meta -> check cb "the I loop" true (meta.Ir.do_var = "I")
  | None -> Alcotest.fail "do_meta missing"

(* ---------------- Freq ---------------- *)

let freq_paper_example () =
  let a = Analysis.of_proc (Program.find (fig1 ()) "FIG1") in
  let ecfg = a.Analysis.ecfg in
  let start = Ecfg.start ecfg in
  let ph = Ecfg.preheader_of_header ecfg 3 in
  let totals = Hashtbl.create 16 in
  List.iter
    (fun (k, v) -> Hashtbl.replace totals k v)
    [ ((start, Label.U), 1); ((ph, Label.U), 10); ((3, Label.T), 5); ((3, Label.F), 5);
      ((4, Label.T), 1); ((4, Label.F), 4); ((5, Label.T), 0); ((5, Label.F), 5) ];
  let f = Freq.compute a totals in
  check ci "invocations" 1 (Freq.invocations f);
  check cf "loop freq 10" 10.0 (Freq.freq f (ph, Label.U));
  check cf "branch prob 0.5" 0.5 (Freq.freq f (3, Label.T));
  check cf "exit prob 0.2" 0.2 (Freq.freq f (4, Label.T));
  check cf "node freq of header" 10.0 (Freq.node_freq f 3);
  check cf "node freq of call" 9.0 (Freq.node_freq f 6);
  check cf "never-taken freq" 0.0 (Freq.freq f (5, Label.T));
  (* division-by-zero rule: a condition of a never-executed node *)
  check cf "start node freq" 1.0 (Freq.node_freq f start)

let freq_zero_division_rule () =
  let a = Analysis.of_proc (Program.find (fig1 ()) "FIG1") in
  (* all-zero profile: every FREQ must be 0, no exceptions *)
  let totals = Hashtbl.create 4 in
  let f = Freq.compute a totals in
  List.iter (fun c -> check cf "all zero" 0.0 (Freq.freq f c)) a.Analysis.conditions

let freq_inconsistent () =
  let a = Analysis.of_proc (Program.find (fig1 ()) "FIG1") in
  let totals = Hashtbl.create 4 in
  (* a positive count on a node that never executes *)
  Hashtbl.replace totals (3, Label.T) 5;
  match Freq.compute a totals with
  | exception Freq.Inconsistent _ -> ()
  | _ -> Alcotest.fail "expected Inconsistent"

(* ---------------- Placement ---------------- *)

let placement_counts_fig1 () =
  let prog = fig1 () in
  let analyses = Analysis.of_program prog in
  let plan = Placement.plan analyses in
  let naive = Naive.plan prog in
  (* regression: values validated in depth during development *)
  check ci "smart counters" 6 (Placement.n_counters plan);
  check ci "naive counters" 9 (Naive.n_counters naive);
  let pp = Placement.proc_plan plan "FIG1" in
  check cb "measured + derived = conditions" true
    (List.length pp.Placement.measured + List.length pp.Placement.derived
    = List.length
        (List.filter
           (fun c ->
             Analysis.site_of_condition pp.Placement.analysis c <> Analysis.Never)
           pp.Placement.analysis.Analysis.conditions))

let placement_opt_monotonic () =
  List.iter
    (fun src ->
      let prog = Program.of_source src in
      let analyses = Analysis.of_program prog in
      let vm = Interp.create prog in
      ignore (Interp.run vm);
      let p1 = Placement.plan ~opt2:false ~opt3:false analyses in
      let p12 = Placement.plan ~opt2:true ~opt3:false analyses in
      let p123 = Placement.plan ~opt2:true ~opt3:true analyses in
      check cb "opt2 reduces counters" true
        (Placement.n_counters p12 <= Placement.n_counters p1);
      check cb "opt3 keeps counters bounded" true
        (Placement.n_counters p123 <= Placement.n_counters p12);
      (* opt3's real payoff is dynamic: fewer counter updates at run time *)
      check cb "opt2 reduces updates" true
        (Placement.dynamic_updates p12 vm <= Placement.dynamic_updates p1 vm);
      check cb "opt3 reduces updates" true
        (Placement.dynamic_updates p123 vm <= Placement.dynamic_updates p12 vm))
    [ S89_workloads.Demos.fig1 (); S89_workloads.Demos.branchy ();
      S89_workloads.Demos.nested_random (); S89_workloads.Livermore.source ]

let placement_static_do_needs_nothing () =
  (* a constant-trip exit-free DO loop must need no loop counters at all *)
  let prog =
    Program.of_source
      "      PROGRAM T\n      DO 10 I = 1, 10\n        X = X + 1.0\n10    CONTINUE\n      END\n"
  in
  let plan = Placement.plan (Analysis.of_program prog) in
  (* only the invocation counter remains *)
  check ci "one counter" 1 (Placement.n_counters plan)

(* the central §3 property: reconstruct(smart counters) = oracle counts *)
let roundtrip prog seed =
  let analyses = Analysis.of_program prog in
  let plan = Placement.plan analyses in
  let config = { Interp.default_config with instr = Placement.probes plan; seed } in
  let vm = Interp.create ~config prog in
  ignore (Interp.run vm);
  let totals = Reconstruct.totals plan ~counters:(Interp.counters vm) in
  Hashtbl.iter
    (fun pname (a : Analysis.t) ->
      let rt = Hashtbl.find totals pname in
      List.iter
        (fun c ->
          let oracle = Analysis.oracle_total a vm c in
          let recon = match Hashtbl.find_opt rt c with Some v -> v | None -> min_int in
          if oracle <> recon then
            Alcotest.failf "%s (%d,%s): oracle=%d reconstructed=%d" pname (fst c)
              (Label.to_string (snd c))
              oracle recon)
        a.Analysis.conditions)
    analyses

let reconstruction_demos () =
  List.iter
    (fun src -> roundtrip (Program.of_source src) 3)
    [ S89_workloads.Demos.fig1 (); S89_workloads.Demos.branchy ();
      S89_workloads.Demos.chunky (); S89_workloads.Demos.nested_random ();
      S89_workloads.Demos.computed_goto (); S89_workloads.Demos.irreducible ();
      S89_workloads.Demos.recursive (); S89_workloads.Demos.sort ();
      S89_workloads.Demos.sieve (); S89_workloads.Linpack_like.source ();
      S89_workloads.Livermore.source;
      S89_workloads.Simple_code.source ~n:16 ~cycles:2 () ]

let reconstruction_random_prop =
  QCheck.Test.make ~count:60 ~name:"reconstruct(smart) = oracle (random programs)"
    QCheck.(pair (int_range 0 100000) (int_range 0 1000))
    (fun (seed, vmseed) ->
      roundtrip (Gen_prog.gen_program seed) vmseed;
      true)

(* ablated placements must reconstruct too *)
let reconstruction_ablations () =
  let prog = Program.of_source S89_workloads.Livermore.source in
  let analyses = Analysis.of_program prog in
  List.iter
    (fun (opt2, opt3) ->
      let plan = Placement.plan ~opt2 ~opt3 analyses in
      let config =
        { Interp.default_config with instr = Placement.probes plan; seed = 5 }
      in
      let vm = Interp.create ~config prog in
      ignore (Interp.run vm);
      let totals = Reconstruct.totals plan ~counters:(Interp.counters vm) in
      Hashtbl.iter
        (fun pname (a : Analysis.t) ->
          let rt = Hashtbl.find totals pname in
          List.iter
            (fun c ->
              if Hashtbl.find_opt rt c <> Some (Analysis.oracle_total a vm c) then
                Alcotest.failf "ablation (%b,%b) mismatch in %s" opt2 opt3 pname)
            a.Analysis.conditions)
        analyses)
    [ (false, false); (true, false); (false, true) ]

let smart_cheaper_than_naive () =
  List.iter
    (fun src ->
      let prog = Program.of_source src in
      let analyses = Analysis.of_program prog in
      let plan = Placement.plan analyses in
      let naive = Naive.plan prog in
      let vm = Interp.create prog in
      ignore (Interp.run vm);
      check cb "smart updates <= naive updates" true
        (Placement.dynamic_updates plan vm <= Naive.dynamic_updates naive prog vm))
    [ S89_workloads.Demos.fig1 (); S89_workloads.Demos.branchy ();
      S89_workloads.Livermore.source;
      S89_workloads.Simple_code.source ~n:16 ~cycles:2 () ]

(* naive block counters equal the leader's execution count *)
let naive_counts_blocks () =
  let prog = Program.of_source (S89_workloads.Demos.branchy ()) in
  let naive = Naive.plan prog in
  let config = { Interp.default_config with instr = Naive.probes naive; seed = 9 } in
  let vm = Interp.create ~config prog in
  ignore (Interp.run vm);
  let counters = Interp.counters vm in
  List.iter
    (fun (p : Program.proc) ->
      let pp = Naive.proc_plan naive p.Program.name in
      Array.iteri
        (fun b counter ->
          match counter with
          | Naive.Per_execution id ->
              check ci "block counter = leader execs"
                (Interp.node_execs vm p.Program.name (Blocks.leader pp.Naive.blocks b))
                counters.(id)
          | Naive.Bulk_at_entry id ->
              (* total adds = body executions *)
              let body_leader = Blocks.leader pp.Naive.blocks b in
              check ci "bulk counter = body execs"
                (Interp.node_execs vm p.Program.name body_leader)
                counters.(id)
          | Naive.Static _ -> ())
        pp.Naive.counters)
    (Program.procs prog)

(* second moments: constant inner trip count means E[F²] = (k+1)² *)
let second_moments_constant () =
  let prog =
    Program.of_source
      "      PROGRAM T\n      DO 20 I = 1, 5\n      DO 10 J = 1, 7\n      X = X + 1.0\n10    CONTINUE\n20    CONTINUE\n      END\n"
  in
  let analyses = Analysis.of_program prog in
  let plan = Placement.plan ~second_moments:true analyses in
  let config = { Interp.default_config with instr = Placement.probes plan } in
  let vm = Interp.create ~config prog in
  ignore (Interp.run vm);
  let counters = Interp.counters vm in
  let totals = Reconstruct.totals plan ~counters in
  let tot = Hashtbl.find totals "T" in
  let sms = Reconstruct.loop_second_moments plan ~counters "T" tot in
  check cb "some loops tracked" true (sms <> []);
  List.iter
    (fun (_, ef2) ->
      check cb "E[F^2] is a square of trips+1" true (ef2 = 64.0 || ef2 = 36.0))
    sms

(* variable trip counts: E[F²] ≥ E[F]² with equality iff deterministic *)
let second_moments_variable () =
  let prog = Program.of_source (S89_workloads.Demos.nested_random ()) in
  let analyses = Analysis.of_program prog in
  let plan = Placement.plan ~second_moments:true analyses in
  let config = { Interp.default_config with instr = Placement.probes plan; seed = 3 } in
  let vm = Interp.create ~config prog in
  ignore (Interp.run vm);
  let counters = Interp.counters vm in
  let totals = Reconstruct.totals plan ~counters in
  let tot = Hashtbl.find totals "NESTED" in
  let f = Freq.compute (Hashtbl.find analyses "NESTED") tot in
  let a = Hashtbl.find analyses "NESTED" in
  List.iter
    (fun (h, ef2) ->
      let ph = Ecfg.preheader_of_header a.Analysis.ecfg h in
      let ef = Freq.freq f (ph, Ecfg.body_label) in
      check cb "E[F^2] >= E[F]^2" true (ef2 >= (ef *. ef) -. 1e-9))
    (Reconstruct.loop_second_moments plan ~counters "NESTED" tot)

(* ---------------- Database ---------------- *)

let database_accumulate_save_load () =
  let prog = Program.of_source (S89_workloads.Demos.branchy ()) in
  let analyses = Analysis.of_program prog in
  let db = Database.create () in
  let per_run_totals = ref [] in
  for seed = 1 to 3 do
    let vm = Interp.create ~config:{ Interp.default_config with seed } prog in
    ignore (Interp.run vm);
    let per_proc = Hashtbl.create 4 in
    Hashtbl.iter
      (fun name a -> Hashtbl.replace per_proc name (Analysis.oracle_totals a vm))
      analyses;
    per_run_totals := per_proc :: !per_run_totals;
    Database.accumulate db per_proc
  done;
  check ci "three runs" 3 (Database.runs db);
  (* sums equal element-wise sums *)
  let summed = Database.proc_totals db "BRANCHY" in
  Hashtbl.iter
    (fun c v ->
      let expected =
        List.fold_left
          (fun acc per_proc ->
            acc
            + (match Hashtbl.find_opt (Hashtbl.find per_proc "BRANCHY") c with
              | Some n -> n
              | None -> 0))
          0 !per_run_totals
      in
      check ci "summed" expected v)
    summed;
  (* save / load round-trip *)
  let path = Filename.temp_file "s89db" ".txt" in
  Database.save db path;
  let db2 = Database.load path in
  Sys.remove path;
  check ci "runs preserved" 3 (Database.runs db2);
  let reload = Database.proc_totals db2 "BRANCHY" in
  Hashtbl.iter
    (fun c v -> check ci "entry preserved" v (Hashtbl.find reload c))
    summed;
  (* merge doubles everything *)
  Database.merge ~into:db db2;
  check ci "merged runs" 6 (Database.runs db);
  Hashtbl.iter
    (fun c v -> check ci "merged sums" (2 * v) (Hashtbl.find (Database.proc_totals db "BRANCHY") c))
    summed

(* frequencies from sums over several runs are averages (§3: ratios) *)
let database_freq_from_sums () =
  let prog = Program.of_source (S89_workloads.Demos.fig1 ~m:5 ()) in
  let analyses = Analysis.of_program prog in
  let a = Hashtbl.find analyses "FIG1" in
  let db = Database.create () in
  for seed = 1 to 4 do
    let vm = Interp.create ~config:{ Interp.default_config with seed } prog in
    ignore (Interp.run vm);
    let per_proc = Hashtbl.create 4 in
    Hashtbl.iter
      (fun name a -> Hashtbl.replace per_proc name (Analysis.oracle_totals a vm))
      analyses;
    Database.accumulate db per_proc
  done;
  let f = Freq.compute a (Database.proc_totals db "FIG1") in
  check ci "four invocations" 4 (Freq.invocations f);
  (* FIG1 is deterministic: per-invocation frequencies match one run *)
  let vm = Interp.create prog in
  ignore (Interp.run vm);
  let f1 = Freq.compute a (Analysis.oracle_totals a vm) in
  List.iter
    (fun c -> check cf "same average freq" (Freq.freq f1 c) (Freq.freq f c))
    a.Analysis.conditions

let suite =
  [
    Alcotest.test_case "blocks: fig1" `Quick blocks_fig1;
    Alcotest.test_case "blocks: partition" `Quick blocks_partition;
    Alcotest.test_case "sites: fig1" `Quick sites_fig1;
    Alcotest.test_case "exit-free DO detection" `Quick exit_free_detection;
    Alcotest.test_case "freq: paper example" `Quick freq_paper_example;
    Alcotest.test_case "freq: zero-division rule" `Quick freq_zero_division_rule;
    Alcotest.test_case "freq: inconsistent totals" `Quick freq_inconsistent;
    Alcotest.test_case "placement: fig1 counts" `Quick placement_counts_fig1;
    Alcotest.test_case "placement: optimizations monotonic" `Quick placement_opt_monotonic;
    Alcotest.test_case "placement: static DO free" `Quick placement_static_do_needs_nothing;
    Alcotest.test_case "reconstruction: demos" `Slow reconstruction_demos;
    QCheck_alcotest.to_alcotest reconstruction_random_prop;
    Alcotest.test_case "reconstruction: ablations" `Slow reconstruction_ablations;
    Alcotest.test_case "smart cheaper than naive" `Slow smart_cheaper_than_naive;
    Alcotest.test_case "naive counts blocks" `Quick naive_counts_blocks;
    Alcotest.test_case "second moments: constant" `Quick second_moments_constant;
    Alcotest.test_case "second moments: variable" `Quick second_moments_variable;
    Alcotest.test_case "database: accumulate/save/load/merge" `Quick
      database_accumulate_save_load;
    Alcotest.test_case "database: freq from sums" `Quick database_freq_from_sums;
  ]

(* ---------------- the §3 conservation laws, from oracle counts ----------------
   These are the very equations the smart placement exploits; here they are
   verified directly against ground-truth counts on random programs. *)

let conservation_laws_prop =
  QCheck.Test.make ~count:40 ~name:"§3 conservation laws hold on oracle counts"
    QCheck.(pair (int_range 0 100000) (int_range 0 300))
    (fun (seed, vmseed) ->
      let prog = Gen_prog.gen_program seed in
      let vm = Interp.create ~config:{ Interp.default_config with seed = vmseed } prog in
      ignore (Interp.run vm);
      List.for_all
        (fun (p : S89_frontend.Program.proc) ->
          let a = Analysis.of_proc p in
          let ecfg = a.Analysis.ecfg in
          let totals = Analysis.oracle_totals a vm in
          let get c = match Hashtbl.find_opt totals c with Some v -> v | None -> 0 in
          let node_total x =
            match Reconstruct.node_total a totals x with Some v -> v | None -> -1
          in
          List.for_all
            (fun h ->
              let ph = Ecfg.preheader_of_header ecfg h in
              (* observation 1: Σ exits = preheader entries *)
              let exits =
                List.concat_map
                  (fun pe ->
                    List.filter_map
                      (fun (e : Label.t S89_graph.Digraph.edge) ->
                        if Label.is_pseudo e.label then None
                        else Some (e.src, e.label))
                      (S89_cdg.Fcdg.in_edges a.Analysis.fcdg pe))
                  (Ecfg.postexits_of_header ecfg h)
                |> List.sort_uniq compare
              in
              let law1 =
                List.fold_left (fun acc c -> acc + get c) 0 exits = node_total ph
              in
              (* observation 2: Σ latch-edge totals = header − preheader *)
              let latch_total =
                List.fold_left
                  (fun acc (e : Label.t S89_graph.Digraph.edge) ->
                    acc + Interp.edge_count vm p.S89_frontend.Program.name e.src e.label)
                  0 (Ecfg.latch_edges ecfg h)
              in
              let law2 = latch_total = get (ph, Ecfg.body_label) - node_total ph in
              law1 && law2)
            (Ecfg.headers ecfg))
        (S89_frontend.Program.procs prog))

(* node-balance law: for a branch node with all labels as conditions,
   Σ label totals = node executions *)
let node_balance_prop =
  QCheck.Test.make ~count:40 ~name:"§3 node balance holds on oracle counts"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let prog = Gen_prog.gen_program seed in
      let vm = Interp.create prog in
      ignore (Interp.run vm);
      List.for_all
        (fun (p : S89_frontend.Program.proc) ->
          let a = Analysis.of_proc p in
          let totals = Analysis.oracle_totals a vm in
          let conds = a.Analysis.conditions in
          let ok = ref true in
          Cfg.iter_nodes
            (fun u ->
              let labels = Cfg.out_labels p.S89_frontend.Program.cfg u in
              if
                List.length labels >= 2
                && List.for_all (fun l -> List.mem (u, l) conds) labels
              then begin
                let sum =
                  List.fold_left
                    (fun acc l ->
                      acc
                      + (match Hashtbl.find_opt totals (u, l) with
                        | Some v -> v
                        | None -> 0))
                    0 labels
                in
                if sum <> Interp.node_execs vm p.S89_frontend.Program.name u then
                  ok := false
              end)
            p.S89_frontend.Program.cfg;
          !ok)
        (S89_frontend.Program.procs prog))

(* FREQ consistency: NODE_FREQ(u) × invocations = node executions *)
let node_freq_consistency_prop =
  QCheck.Test.make ~count:40 ~name:"NODE_FREQ × invocations = executions"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let prog = Gen_prog.gen_program seed in
      let vm = Interp.create prog in
      ignore (Interp.run vm);
      List.for_all
        (fun (p : S89_frontend.Program.proc) ->
          let a = Analysis.of_proc p in
          let f = Freq.of_oracle a vm in
          let inv = float_of_int (Freq.invocations f) in
          let ok = ref true in
          Cfg.iter_nodes
            (fun u ->
              let expected =
                float_of_int (Interp.node_execs vm p.S89_frontend.Program.name u)
              in
              let got = Freq.node_freq f u *. inv in
              if Float.abs (got -. expected) > 1e-6 *. (1.0 +. expected) then ok := false)
            p.S89_frontend.Program.cfg;
          !ok)
        (S89_frontend.Program.procs prog))

let laws_extra =
  [
    QCheck_alcotest.to_alcotest conservation_laws_prop;
    QCheck_alcotest.to_alcotest node_balance_prop;
    QCheck_alcotest.to_alcotest node_freq_consistency_prop;
  ]

let suite = suite @ laws_extra

(* reconstruction also holds on the optimizer's output (what Table 1's
   opt-ON rows instrument) *)
let reconstruction_optimized () =
  List.iter
    (fun src ->
      roundtrip (S89_vm.Optimize.program (Program.of_source src)) 7)
    [ S89_workloads.Demos.fig1 (); S89_workloads.Demos.branchy ();
      S89_workloads.Demos.sieve (); S89_workloads.Livermore.source ]

let reconstruction_optimized_random_prop =
  QCheck.Test.make ~count:30 ~name:"reconstruct = oracle on optimized programs"
    QCheck.(int_range 0 100000)
    (fun seed ->
      roundtrip (S89_vm.Optimize.program (Gen_prog.gen_program seed)) 13;
      true)

let database_rejects_garbage () =
  let path = Filename.temp_file "s89bad" ".txt" in
  let oc = open_out path in
  output_string oc "this is not a database\n";
  close_out oc;
  (match Database.load path with
  | exception Database.Load_error { line = 1; _ } -> ()
  | exception Database.Load_error { line; _ } ->
      Alcotest.failf "Load_error on unexpected line %d" line
  | _ -> Alcotest.fail "expected Load_error on garbage");
  Sys.remove path

let pretty_printers_smoke () =
  let prog = Program.of_source (S89_workloads.Demos.fig1 ()) in
  let analyses = Analysis.of_program prog in
  let plan = Placement.plan analyses in
  let s = Fmt.str "%a" Placement.pp plan in
  check cb "plan printer mentions counters" true
    (String.length s > 0
    &&
    let rec contains i =
      i + 8 <= String.length s && (String.sub s i 8 = "measured" || contains (i + 1))
    in
    contains 0);
  let a = Hashtbl.find analyses "FIG1" in
  let vm = Interp.create prog in
  ignore (Interp.run vm);
  let f = Freq.of_oracle a vm in
  let s = Fmt.str "%a" Freq.pp f in
  check cb "freq printer mentions totals" true (String.length s > 20)

let suite =
  suite
  @ [
      Alcotest.test_case "reconstruction: optimized programs" `Slow
        reconstruction_optimized;
      QCheck_alcotest.to_alcotest reconstruction_optimized_random_prop;
      Alcotest.test_case "database rejects garbage" `Quick database_rejects_garbage;
      Alcotest.test_case "pretty printers" `Quick pretty_printers_smoke;
    ]
