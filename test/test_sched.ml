(* Tests for s89_sched: distributions (moment laws), Kruskal–Weiss chunk
   sizing and its makespan model, and the parallel-loop simulator. *)

open S89_sched
module Stats = S89_util.Stats
module Prng = S89_util.Prng

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cf = Alcotest.float 1e-9

(* ---------------- Dist ---------------- *)

let dist_moments_analytic () =
  check cf "const mean" 5.0 (Dist.mean (Dist.Const 5.0));
  check cf "const var" 0.0 (Dist.variance (Dist.Const 5.0));
  check cf "uniform mean" 3.0 (Dist.mean (Dist.Uniform { lo = 1.0; hi = 5.0 }));
  check cf "uniform var" (16.0 /. 12.0) (Dist.variance (Dist.Uniform { lo = 1.0; hi = 5.0 }));
  check cf "exp var" 9.0 (Dist.variance (Dist.Exponential { mean = 3.0 }));
  let b = Dist.Bimodal { fast = 1.0; slow = 9.0; p_slow = 0.25 } in
  check cf "bimodal mean" 3.0 (Dist.mean b);
  (* var = 0.75·(1−3)² + 0.25·(9−3)² = 3 + 9 = 12 *)
  check cf "bimodal var" 12.0 (Dist.variance b);
  check cf "shifted exp mean" 7.0 (Dist.mean (Dist.Shifted_exp { base = 4.0; extra_mean = 3.0 }));
  check cf "shifted exp var" 9.0 (Dist.variance (Dist.Shifted_exp { base = 4.0; extra_mean = 3.0 }))

let dist_of_moments () =
  List.iter
    (fun (m, v) ->
      let d = Dist.of_moments ~mean:m ~variance:v in
      check (Alcotest.float 1e-6) "mean matches" m (Dist.mean d);
      check (Alcotest.float 1e-6) "variance matches" v (Dist.variance d))
    [ (10.0, 0.0); (10.0, 4.0); (10.0, 100.0); (10.0, 10000.0); (1.0, 0.5) ]

let dist_sample_moments () =
  let rng = Prng.create ~seed:77 in
  List.iter
    (fun d ->
      let st = Stats.create () in
      for _ = 1 to 30000 do
        let x = Dist.sample rng d in
        if x < 0.0 then Alcotest.fail "negative sample";
        Stats.add st x
      done;
      check cb "sampled mean close" true
        (Stats.rel_err (Stats.mean st) (Dist.mean d) < 0.05);
      if Dist.variance d > 0.0 then
        check cb "sampled variance close" true
          (Stats.rel_err (Stats.variance st) (Dist.variance d) < 0.1))
    [ Dist.Const 3.0; Dist.Uniform { lo = 2.0; hi = 8.0 };
      Dist.Exponential { mean = 5.0 };
      Dist.Bimodal { fast = 1.0; slow = 20.0; p_slow = 0.2 };
      Dist.Shifted_exp { base = 2.0; extra_mean = 4.0 };
      Dist.of_moments ~mean:10.0 ~variance:400.0 ]

(* ---------------- Chunk ---------------- *)

let chunk_zero_variance () =
  check ci "sigma=0 -> N/P" 625 (Chunk.kw_chunk ~n:10000 ~p:16 ~h:50.0 ~sigma:0.0);
  check ci "p=1 -> all" 100 (Chunk.kw_chunk ~n:100 ~p:1 ~h:1.0 ~sigma:5.0);
  check ci "static chunk rounds up" 34 (Chunk.static_chunk ~n:100 ~p:3)

let chunk_monotonicity () =
  let k sigma = Chunk.kw_chunk ~n:10000 ~p:16 ~h:50.0 ~sigma in
  check cb "more variance, smaller chunks" true (k 10.0 >= k 100.0 && k 100.0 >= k 1000.0);
  let kh h = Chunk.kw_chunk ~n:10000 ~p:16 ~h ~sigma:100.0 in
  check cb "more overhead, larger chunks" true (kh 10.0 <= kh 100.0 && kh 100.0 <= kh 1000.0);
  (* clamped to [1, N/P] *)
  check cb "lower clamp" true (k 1e12 >= 1);
  check cb "upper clamp" true (k 1e-12 <= Chunk.static_chunk ~n:10000 ~p:16)

let chunk_optimizes_model () =
  (* k_opt should beat k_opt/4 and 4·k_opt in the analytic makespan model *)
  let n = 10000 and p = 16 and h = 50.0 and mu = 100.0 and sigma = 100.0 in
  let k_opt = Chunk.kw_chunk ~n ~p ~h ~sigma in
  let m k = Chunk.expected_makespan ~n ~p ~h ~mu ~sigma ~k in
  check cb "beats smaller" true (m k_opt <= m (max 1 (k_opt / 4)) +. 1e-9);
  check cb "beats larger" true (m k_opt <= m (4 * k_opt) +. 1e-9)

let chunk_strategies () =
  check ci "self-sched" 1 (Chunk.initial_chunk Chunk.Self_sched ~n:100 ~p:4 ~h:1.0 ~sigma:1.0);
  check ci "fixed clamps" 100
    (Chunk.initial_chunk (Chunk.Fixed 1000) ~n:100 ~p:4 ~h:1.0 ~sigma:1.0);
  check ci "static" 25 (Chunk.initial_chunk Chunk.Static_split ~n:100 ~p:4 ~h:1.0 ~sigma:1.0);
  check cb "names distinct" true
    (List.length
       (List.sort_uniq compare
          (List.map Chunk.strategy_name
             [ Chunk.Static_split; Chunk.Self_sched; Chunk.Fixed 3;
               Chunk.Kruskal_weiss; Chunk.Guided ]))
    = 5)

let chunk_from_estimate () =
  check ci "from estimate = kw on sqrt var"
    (Chunk.kw_chunk ~n:1000 ~p:8 ~h:10.0 ~sigma:20.0)
    (Chunk.from_estimate ~time:100.0 ~var:400.0 ~n:1000 ~p:8 ~h:10.0)

(* ---------------- Parsim ---------------- *)

let parsim_conservation () =
  let r =
    Parsim.run ~seed:3 ~n:1000 ~p:8 ~h:5.0 ~dist:(Dist.Exponential { mean = 50.0 })
      (Chunk.Fixed 25)
  in
  (* every iteration's time is accounted for in some worker's busy time *)
  let busy = Array.fold_left ( +. ) 0.0 r.Parsim.worker_busy in
  check (Alcotest.float 1e-6) "work + overhead = busy"
    (r.Parsim.total_work +. r.Parsim.total_overhead)
    busy;
  check ci "chunks" 40 r.Parsim.chunks_dispatched;
  check cb "makespan >= busy/p" true (r.Parsim.makespan >= busy /. 8.0 -. 1e-9);
  check cb "makespan <= busy" true (r.Parsim.makespan <= busy +. 1e-9)

let parsim_zero_variance_static_optimal () =
  let dist = Dist.Const 100.0 in
  let m strat = (Parsim.run ~seed:1 ~n:1000 ~p:10 ~h:20.0 ~dist strat).Parsim.makespan in
  check cb "static beats self-sched at zero variance" true
    (m Chunk.Static_split < m Chunk.Self_sched);
  (* perfect split: exactly n/p iterations + one dispatch per worker *)
  check (Alcotest.float 1e-6) "static makespan exact" (20.0 +. (100.0 *. 100.0))
    (m Chunk.Static_split)

let parsim_high_variance_kw_wins () =
  let n = 4000 and p = 16 and h = 50.0 in
  let mu = 100.0 in
  let sigma = 2.0 *. mu in
  let dist = Dist.of_moments ~mean:mu ~variance:(sigma *. sigma) in
  let avg strat = Stats.mean (Parsim.run_avg ~seeds:10 ~n ~p ~h ~dist strat) in
  let k = Chunk.kw_chunk ~n ~p ~h ~sigma in
  check cb "kw beats static under high variance" true
    (avg (Chunk.Fixed k) < avg Chunk.Static_split)

let parsim_guided_and_edge_cases () =
  let dist = Dist.Const 10.0 in
  let r = Parsim.run ~n:0 ~p:4 ~h:1.0 ~dist Chunk.Self_sched in
  check (Alcotest.float 1e-9) "empty loop" 0.0 r.Parsim.makespan;
  let r = Parsim.run ~n:100 ~p:4 ~h:1.0 ~dist Chunk.Guided in
  check cb "guided dispatches decreasing chunks" true (r.Parsim.chunks_dispatched > 4);
  check cb "guided completes all work" true
    (Float.abs (r.Parsim.total_work -. 1000.0) < 1e-6);
  match Parsim.run ~n:(-1) ~p:4 ~h:1.0 ~dist Chunk.Self_sched with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* determinism *)
let parsim_determinism () =
  let dist = Dist.Exponential { mean = 10.0 } in
  let m () = (Parsim.run ~seed:9 ~n:500 ~p:4 ~h:2.0 ~dist Chunk.Self_sched).Parsim.makespan in
  check cf "same seed same makespan" (m ()) (m ())

(* run_avg is a function of the seed list only: driving the replications
   through a 2-domain pool must give the byte-identical Stats.t that the
   sequential path produces *)
let parsim_run_avg_parallel_identical () =
  let dist = Dist.Exponential { mean = 10.0 } in
  let go ?map () =
    Parsim.run_avg ~seeds:12 ?map ~n:2000 ~p:8 ~h:5.0 ~dist Chunk.Self_sched
  in
  let seq = go () in
  let pool = S89_exec.Pool.create ~force_parallel:true ~domains:2 () in
  let par = go ~map:(S89_exec.Pool.map_list pool) () in
  check cb "identical Stats across schedules" true
    (Stats.count seq = Stats.count par
    && Stats.mean seq = Stats.mean par
    && Stats.variance seq = Stats.variance par
    && Stats.min seq = Stats.min par
    && Stats.max seq = Stats.max par)

let suite =
  [
    Alcotest.test_case "dist: analytic moments" `Quick dist_moments_analytic;
    Alcotest.test_case "dist: of_moments" `Quick dist_of_moments;
    Alcotest.test_case "dist: sampled moments" `Slow dist_sample_moments;
    Alcotest.test_case "chunk: zero variance" `Quick chunk_zero_variance;
    Alcotest.test_case "chunk: monotonicity" `Quick chunk_monotonicity;
    Alcotest.test_case "chunk: optimizes model" `Quick chunk_optimizes_model;
    Alcotest.test_case "chunk: strategies" `Quick chunk_strategies;
    Alcotest.test_case "chunk: from estimate" `Quick chunk_from_estimate;
    Alcotest.test_case "parsim: conservation" `Quick parsim_conservation;
    Alcotest.test_case "parsim: zero variance" `Quick parsim_zero_variance_static_optimal;
    Alcotest.test_case "parsim: high variance" `Slow parsim_high_variance_kw_wins;
    Alcotest.test_case "parsim: guided and edges" `Quick parsim_guided_and_edge_cases;
    Alcotest.test_case "parsim: determinism" `Quick parsim_determinism;
    Alcotest.test_case "parsim: run_avg parallel identical" `Quick
      parsim_run_avg_parallel_identical;
  ]
