(* PR-8 surface: incremental memoized interprocedural analysis.
   Fingerprint semantics (renames keep them, body edits invalidate
   exactly the caller cone, callee-summary changes propagate), memoized
   vs. from-scratch byte-identity, and the memo record family's crash
   recovery through the store's longest-valid-prefix WAL path. *)

module Program = S89_frontend.Program
module Pipeline = S89_core.Pipeline
module Interproc = S89_core.Interproc
module Static_freq = S89_core.Static_freq
module Report = S89_core.Report
module Memo = S89_core.Memo
module Store = S89_store.Store
module Diag = S89_diag.Diag
module Fault = S89_util.Fault

let check = Alcotest.check
let ci = Alcotest.int
let cs = Alcotest.string
let csl = Alcotest.(list string)

let spec_of s =
  match Fault.parse s with Ok sp -> sp | Error m -> Alcotest.fail m

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_tmp_dir f =
  let dir = Filename.temp_file "s89memo" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> try rm_rf dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* MAIN calls A and C; A calls B.  v2 edits B's body; v3 only renames
   B to BB (the call site in A must follow, so A's body changes too). *)
let src_v1 =
  "      PROGRAM MAIN\n      CALL A\n      CALL C\n      END\n\n\
  \      SUBROUTINE A\n      CALL B\n      END\n\n\
  \      SUBROUTINE B\n      X = 1.0\n      END\n\n\
  \      SUBROUTINE C\n      Y = 2.0\n      END\n"

let src_v2 =
  "      PROGRAM MAIN\n      CALL A\n      CALL C\n      END\n\n\
  \      SUBROUTINE A\n      CALL B\n      END\n\n\
  \      SUBROUTINE B\n      X = 3.0\n      END\n\n\
  \      SUBROUTINE C\n      Y = 2.0\n      END\n"

let src_v3 =
  "      PROGRAM MAIN\n      CALL A\n      CALL C\n      END\n\n\
  \      SUBROUTINE A\n      CALL BB\n      END\n\n\
  \      SUBROUTINE BB\n      X = 1.0\n      END\n\n\
  \      SUBROUTINE C\n      Y = 2.0\n      END\n"

let estimate ?memo src =
  let t = Pipeline.of_source ?memo src in
  Pipeline.estimate_totals ?memo
    ~totals:(Static_freq.program_totals t.Pipeline.analyses)
    t

let report est = Fmt.str "%a" Report.pp est

let find_proc src name =
  match Program.of_source_result src with
  | Error d -> Alcotest.failf "parse: %a" Diag.pp d
  | Ok prog -> Program.find prog name

(* ---------------- fingerprint semantics ---------------- *)

let rename_keeps_fingerprint () =
  let fp_b = Memo.body_fp (find_proc src_v1 "B") in
  let fp_bb = Memo.body_fp (find_proc src_v3 "BB") in
  check cs "renaming a procedure keeps its body fingerprint"
    (Printf.sprintf "%016Lx" fp_b)
    (Printf.sprintf "%016Lx" fp_bb);
  let fp_b2 = Memo.body_fp (find_proc src_v2 "B") in
  check Alcotest.bool "a body edit changes the fingerprint" true (fp_b <> fp_b2)

let body_edit_invalidates_caller_cone () =
  let memo = Memo.create () in
  let _ = estimate ~memo src_v1 in
  let s = Memo.stats memo in
  check ci "cold start: every procedure recomputes" 4 s.Memo.misses;
  check ci "cold start: no hits" 0 s.Memo.hits;
  Memo.reset_stats memo;
  (* A's lowered body is untouched by the edit to B, so any
     recomputation of A is pure callee-summary propagation *)
  check cs "A's body fingerprint is unchanged by the edit to B"
    (Printf.sprintf "%016Lx" (Memo.body_fp (find_proc src_v1 "A")))
    (Printf.sprintf "%016Lx" (Memo.body_fp (find_proc src_v2 "A")));
  let warm = estimate ~memo src_v2 in
  let s = Memo.stats memo in
  check ci "dirty cone is exactly B, A, MAIN" 3 s.Memo.misses;
  check ci "C (outside the cone) hits" 1 s.Memo.hits;
  check cs "memoized result is byte-identical to from-scratch"
    (report (estimate src_v2))
    (report warm)

let rename_hits_callers_miss () =
  let memo = Memo.create () in
  let _ = estimate ~memo src_v1 in
  Memo.reset_stats memo;
  let warm = estimate ~memo src_v3 in
  let s = Memo.stats memo in
  (* BB's key equals B's (names are excluded), C is untouched; A's body
     now reads CALL BB so A and, through A's summary, MAIN recompute *)
  check ci "renamed leaf and untouched C hit" 2 s.Memo.hits;
  check ci "the renaming call site's cone recomputes" 2 s.Memo.misses;
  check cs "memoized rename result is byte-identical to from-scratch"
    (report (estimate src_v3))
    (report warm)

let analysis_layer_hits_on_unchanged_bodies () =
  let memo = Memo.create () in
  let _ = Pipeline.of_source ~memo src_v1 in
  let s = Memo.stats memo in
  check ci "cold: every ECFG/CDG/FCDG is built" 4 s.Memo.analysis_misses;
  Memo.reset_stats memo;
  let _ = Pipeline.of_source ~memo src_v2 in
  let s = Memo.stats memo in
  check ci "only the edited body rebuilds its analysis" 1 s.Memo.analysis_misses;
  check ci "unchanged bodies reuse theirs" 3 s.Memo.analysis_hits

(* ---------------- warm-start summary validation ---------------- *)

let warm_summaries_confirm_and_mismatch () =
  let memo = Memo.create () in
  let _ = estimate ~memo src_v1 in
  let persisted = Memo.drain_summaries memo in
  check ci "one summary per procedure" 4 (List.length persisted);
  (* a faithful reload: every recomputation confirms its summary *)
  let diags = ref [] in
  let m2 = Memo.create ~on_diag:(fun d -> diags := d :: !diags) () in
  List.iter
    (fun (fp, name, time, var) -> Memo.load_summary m2 ~fp ~name ~time ~var)
    persisted;
  let _ = estimate ~memo:m2 src_v1 in
  check ci "all recomputations confirmed" 4 (Memo.stats m2).Memo.warm_confirmed;
  check ci "no mismatches" 0 (Memo.stats m2).Memo.warm_mismatches;
  check ci "nothing new to persist" 0 (List.length (Memo.drain_summaries m2));
  check csl "no diagnostics" [] (List.map (fun d -> d.Diag.code) !diags);
  (* a corrupted reload: every recomputation raises MEMO002 *)
  let diags = ref [] in
  let m3 = Memo.create ~on_diag:(fun d -> diags := d :: !diags) () in
  List.iter
    (fun (fp, name, time, var) ->
      Memo.load_summary m3 ~fp ~name ~time:(time +. 1.0) ~var)
    persisted;
  let _ = estimate ~memo:m3 src_v1 in
  check ci "every stale summary is a mismatch" 4
    (Memo.stats m3).Memo.warm_mismatches;
  check csl "each mismatch is a MEMO002" [ "MEMO002"; "MEMO002"; "MEMO002"; "MEMO002" ]
    (List.map (fun d -> d.Diag.code) !diags);
  check ci "fresh results are re-persisted" 4
    (List.length (Memo.drain_summaries m3))

let conflicting_loads_raise_memo001 () =
  let diags = ref [] in
  let m = Memo.create ~on_diag:(fun d -> diags := d :: !diags) () in
  Memo.load_summary m ~fp:42L ~name:"P" ~time:10.0 ~var:1.0;
  Memo.load_summary m ~fp:42L ~name:"P" ~time:10.0 ~var:1.0;
  check csl "an identical reload is silent" []
    (List.map (fun d -> d.Diag.code) !diags);
  Memo.load_summary m ~fp:42L ~name:"Q" ~time:11.0 ~var:1.0;
  check csl "a conflicting reload is a MEMO001" [ "MEMO001" ]
    (List.map (fun d -> d.Diag.code) !diags)

(* ---------------- the store's memo record family ---------------- *)

let memo_records_roundtrip_and_compact () =
  with_tmp_dir @@ fun dir ->
  let s = Store.open_ ~fsync:false ~dir () in
  Store.append_memo s ~fp:1L ~name:"A" ~time:10.5 ~var:0.25;
  Store.append_memo s ~fp:2L ~name:"B" ~time:20.0 ~var:2.0;
  let before = Store.wal_records s in
  Store.append_memo s ~fp:1L ~name:"A" ~time:10.5 ~var:0.25;
  check ci "an identical re-append is a no-op" before (Store.wal_records s);
  Store.append_memo s ~fp:1L ~name:"A" ~time:99.0 ~var:9.0;
  Store.close s;
  let s2 = Store.open_ ~fsync:false ~dir () in
  check csl "last write per fingerprint wins, id order"
    [ "2 B 0x1.4p+4 0x1p+1"; "1 A 0x1.8cp+6 0x1.2p+3" ]
    (List.map
       (fun (fp, n, t, v) -> Printf.sprintf "%Ld %s %h %h" fp n t v)
       (Store.memos s2));
  Store.compact s2;
  Store.close s2;
  let s3 = Store.open_ ~fsync:false ~dir () in
  check ci "records survive compaction into the new epoch" 2
    (List.length (Store.memos s3));
  check Alcotest.bool "compaction bumped the epoch" true (Store.epoch s3 > 0);
  Store.close s3

let torn_memo_record_recovers () =
  with_tmp_dir @@ fun dir ->
  let s = Store.open_ ~fsync:false ~dir () in
  Store.append_memo s ~fp:1L ~name:"A" ~time:10.0 ~var:1.5;
  Store.append_memo s ~fp:2L ~name:"B" ~time:20.0 ~var:2.5;
  (match
     Fault.with_spec (Some (spec_of "wal_torn:1.0,seed:7")) (fun () ->
         Store.append_memo s ~fp:3L ~name:"C" ~time:30.0 ~var:3.5)
   with
  | () -> Alcotest.fail "expected the injected torn write to raise"
  | exception Fault.Injected _ -> ());
  Store.close s;
  (* the torn memo record rides the existing longest-valid-prefix path:
     DB002, never Corrupt, and the intact prefix is fully recovered *)
  let s2 = Store.open_ ~fsync:false ~dir () in
  check csl "recovery reports exactly one DB002" [ "DB002" ]
    (List.map (fun d -> d.Diag.code) (Store.recovery_diags s2));
  check csl "the valid prefix survives" [ "A"; "B" ]
    (List.map (fun (_, n, _, _) -> n) (Store.memos s2));
  Store.append_memo s2 ~fp:3L ~name:"C" ~time:30.0 ~var:3.5;
  check ci "appends land cleanly after recovery" 3
    (List.length (Store.memos s2));
  Store.close s2

let suite =
  [
    Alcotest.test_case "rename keeps the body fingerprint" `Quick
      rename_keeps_fingerprint;
    Alcotest.test_case "body edit invalidates exactly the caller cone" `Quick
      body_edit_invalidates_caller_cone;
    Alcotest.test_case "rename: leaf hits, call-site cone misses" `Quick
      rename_hits_callers_miss;
    Alcotest.test_case "analysis layer rebuilds only changed bodies" `Quick
      analysis_layer_hits_on_unchanged_bodies;
    Alcotest.test_case "warm summaries confirm; stale ones raise MEMO002" `Quick
      warm_summaries_confirm_and_mismatch;
    Alcotest.test_case "conflicting summary loads raise MEMO001" `Quick
      conflicting_loads_raise_memo001;
    Alcotest.test_case "memo records round-trip and survive compaction" `Quick
      memo_records_roundtrip_and_compact;
    Alcotest.test_case "torn memo record recovers via the WAL prefix" `Quick
      torn_memo_record_recovers;
  ]
