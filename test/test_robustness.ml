(* Error-path tests: the PR-4 fault-tolerance surface.

   Covers the structured-diagnostic conversions (malformed sources per
   code), the profile database's versioned format (truncation, corruption,
   repair), Node_split's fuel, deterministic fault injection through the
   pool, execution guards (fuel / cycles / call depth), per-item budgets,
   and the pipeline's graceful degradation vs [~strict] fail-fast. *)

module Program = S89_frontend.Program
module Ir = S89_frontend.Ir
module Pipeline = S89_core.Pipeline
module Interproc = S89_core.Interproc
module Analysis = S89_profiling.Analysis
module Database = S89_profiling.Database
module Interp = S89_vm.Interp
module Diag = S89_diag.Diag
module Fault = S89_util.Fault
module Pool = S89_exec.Pool
module Chunked = S89_exec.Chunked
module Cfg = S89_cfg.Cfg
module Label = S89_cfg.Label
module Digraph = S89_graph.Digraph
module Node_split = S89_graph.Node_split

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

(* ---------------- diagnostics ---------------- *)

let diag_exit_codes () =
  let code c = Diag.error ~code:c "x" in
  List.iter
    (fun (c, expect) -> check ci c expect (Diag.exit_code (code c)))
    [ ("IO001", 2); ("DB001", 2); ("CLI001", 2);
      ("LEX001", 3); ("PAR001", 3); ("SEM001", 3); ("LOW001", 3); ("LOW002", 3);
      ("ANA001", 4); ("ANA002", 4); ("EST001", 4); ("EST002", 4);
      ("RUN001", 5); ("RUN003", 5); ("FLT001", 5) ]

let diag_rendering () =
  let d = Diag.error ~proc:"MAIN" ~line:12 ~hint:"try X" ~code:"PAR001" "boom" in
  let s = Diag.to_string d in
  let has sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check cb "has code" true (has "PAR001");
  check cb "has proc" true (has "MAIN");
  check cb "has line" true (has "12");
  check cb "has hint" true (has "try X");
  check cb "is_error" true (Diag.is_error d);
  check cb "warning not error" false
    (Diag.is_error (Diag.warning ~code:"RUN005" "w"))

(* ---------------- frontend rejections, one per code ---------------- *)

let frontend_rejects () =
  let expect src code =
    match Program.of_source_result src with
    | Ok _ -> Alcotest.failf "expected %s rejection" code
    | Error d -> check Alcotest.string ("code for " ^ code) code d.Diag.code
  in
  expect "PROGRAM A\n  X = 1 ~ 2\nEND\n" "LEX001";
  expect "PROGRAM A\n  IF (\nEND\n" "PAR001";
  expect "PROGRAM A\n  GOTO 999\nEND\n" "SEM001"

let frontend_diag_has_line () =
  match Program.of_source_result "PROGRAM A\n  X = 1 ~ 2\nEND\n" with
  | Error { Diag.line = Some l; _ } -> check ci "lexer line" 2 l
  | _ -> Alcotest.fail "expected a located LEX001"

(* ---------------- database format ---------------- *)

let with_tmp f =
  let path = Filename.temp_file "s89db" ".txt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let sample_db () =
  let t =
    Pipeline.of_source (S89_workloads.Demos.fig1 ())
  in
  (Pipeline.profile_smart ~runs:3 t).Pipeline.database

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let db_roundtrip_stable () =
  let db = sample_db () in
  with_tmp @@ fun p1 ->
  with_tmp @@ fun p2 ->
  Database.save db p1;
  let db2 = Database.load p1 in
  check ci "runs survive" (Database.runs db) (Database.runs db2);
  Database.save db2 p2;
  check Alcotest.string "save . load . save is identity" (read_file p1)
    (read_file p2)

let db_header_and_checksum () =
  let db = sample_db () in
  with_tmp @@ fun p ->
  Database.save db p;
  let s = read_file p in
  check cb "versioned magic first" true
    (String.length s > 17 && String.sub s 0 16 = "s89-profile-db 2");
  let lines = String.split_on_char '\n' (String.trim s) in
  let last = List.nth lines (List.length lines - 1) in
  check cb "checksum last" true
    (String.length last > 9 && String.sub last 0 9 = "checksum ")

let db_truncated () =
  let db = sample_db () in
  with_tmp @@ fun p ->
  Database.save db p;
  let s = read_file p in
  write_file p (String.sub s 0 (String.length s - 25));
  (match Database.load p with
  | exception Database.Load_error _ -> ()
  | _ -> Alcotest.fail "expected Load_error on truncated db");
  (* repair mode keeps the valid prefix *)
  let rep = Database.load ~repair:true p in
  check ci "repair keeps run count" (Database.runs db) (Database.runs rep)

let db_corrupt_payload () =
  let db = sample_db () in
  with_tmp @@ fun p ->
  Database.save db p;
  let s = read_file p in
  let b = Bytes.of_string s in
  (* flip a byte in the middle of the payload *)
  let i = Bytes.length b / 2 in
  Bytes.set b i (if Bytes.get b i = 'x' then 'y' else 'x');
  write_file p (Bytes.to_string b);
  (match Database.load p with
  | exception Database.Load_error { line; _ } ->
      check cb "error is located" true (line >= 0)
  | _ -> Alcotest.fail "expected Load_error on corrupt db");
  (* repair still returns something usable *)
  ignore (Database.load ~repair:true p)

let db_bad_version () =
  with_tmp @@ fun p ->
  write_file p "s89-profile-db 99\nrun-count 1\n";
  match Database.load p with
  | exception Database.Load_error { line = 1; _ } -> ()
  | exception Database.Load_error { line; _ } ->
      Alcotest.failf "Load_error on line %d, expected 1" line
  | _ -> Alcotest.fail "expected Load_error on unknown version"

let db_legacy_v1 () =
  (* header-less v1 files (bare total rows) must still load *)
  let db = sample_db () in
  with_tmp @@ fun p ->
  Database.save db p;
  let s = read_file p in
  let v1 =
    String.split_on_char '\n' s
    |> List.filter (fun l ->
           let starts p =
             String.length l >= String.length p && String.sub l 0 (String.length p) = p
           in
           starts "total " || starts "run-count ")
    |> String.concat "\n"
  in
  with_tmp @@ fun p1 ->
  write_file p1 (v1 ^ "\n");
  let old = Database.load p1 in
  check ci "v1 run count preserved" (Database.runs db) (Database.runs old)

(* ---------------- node splitting fuel ---------------- *)

let node_split_gave_up () =
  (* a dense irreducible tangle: splitting blows up and must hit fuel,
     not loop forever *)
  let n = 12 in
  let g = Digraph.create () in
  ignore (Digraph.add_nodes g n);
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then ignore (Digraph.add_edge g ~src:u ~dst:v ~label:())
    done
  done;
  match Node_split.make_reducible g ~root:0 ~on_copy:(fun ~orig:_ ~copy:_ -> ()) with
  | _ -> check cb "resolved" true (S89_graph.Reducibility.is_reducible g ~root:0)
  | exception Node_split.Gave_up nodes -> check cb "gave up with fuel" true (nodes >= n)

(* ---------------- fault injection ---------------- *)

let spec_of s =
  match Fault.parse s with
  | Ok sp -> sp
  | Error m -> Alcotest.failf "Fault.parse %S: %s" s m

let fault_parse () =
  (match Fault.parse "worker_raise:0.5,slow_item:0.1@0.001,seed:9" with
  | Ok sp ->
      check (Alcotest.float 1e-9) "prob" 0.5 (Fault.prob sp Fault.Worker_raise);
      check (Alcotest.float 1e-9) "slow" 0.001 (Fault.slow_seconds sp)
  | Error m -> Alcotest.failf "parse failed: %s" m);
  (match Fault.parse "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error");
  match Fault.parse "worker_raise:2.0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "probabilities above 1 must be rejected"

let fault_determinism () =
  let sp = spec_of "worker_raise:0.3,seed:42" in
  let draws () =
    List.init 500 (fun k -> Fault.fires sp Fault.Worker_raise ~key:k ~attempt:0)
  in
  check cb "same spec, same decisions" true (draws () = draws ());
  let sp2 = spec_of "worker_raise:0.3,seed:43" in
  let other =
    List.init 500 (fun k -> Fault.fires sp2 Fault.Worker_raise ~key:k ~attempt:0)
  in
  check cb "different seed, different decisions" true (draws () <> other);
  let fired = List.filter Fun.id (draws ()) in
  check cb "some fire" true (List.length fired > 50);
  check cb "not all fire" true (List.length fired < 450)

let pool_absorbs_faults () =
  (* low-probability worker faults are retried away: results identical *)
  let arr = Array.init 200 Fun.id in
  let expected = Array.map (fun x -> x * x) arr in
  Fault.with_spec (Some (spec_of "worker_raise:0.05,seed:1")) (fun () ->
      let pool = Pool.create ~domains:1 () in
      check (Alcotest.array ci) "sequential path absorbs" expected
        (Pool.map pool (fun x -> x * x) arr);
      let par = Pool.create ~force_parallel:true ~domains:2 () in
      check (Alcotest.array ci) "parallel path absorbs" expected
        (Pool.map par (fun x -> x * x) arr))

let pool_fault_escalates () =
  (* a certain fault exhausts the retries and surfaces as Injected *)
  Fault.with_spec (Some (spec_of "worker_raise:1.0,seed:1")) (fun () ->
      let pool = Pool.create ~domains:1 () in
      match Pool.map pool (fun x -> x) (Array.init 4 Fun.id) with
      | _ -> Alcotest.fail "expected Injected to escape"
      | exception Fault.Injected _ -> ())

let chunked_faults_deterministic () =
  let arr = Array.init 300 Fun.id in
  let expected = Array.map (fun x -> x + 1) arr in
  Fault.with_spec (Some (spec_of "worker_raise:0.05,seed:7")) (fun () ->
      let pool = Pool.create ~force_parallel:true ~domains:2 () in
      check (Alcotest.array ci) "chunked absorbs" expected
        (Chunked.map pool (fun x -> x + 1) arr))

let analysis_fault_degrades () =
  let src = S89_workloads.Demos.fig1 () in
  Fault.with_spec (Some (spec_of "analysis_raise:1.0,seed:3")) (fun () ->
      let t = Pipeline.of_source src in
      check cb "every procedure diagnosed" true
        (List.length (Pipeline.diagnostics t)
        = List.length (Program.procs t.Pipeline.prog));
      List.iter
        (fun d -> check Alcotest.string "code" "FLT001" d.Diag.code)
        (Pipeline.diagnostics t);
      match Pipeline.of_source ~strict:true src with
      | _ -> Alcotest.fail "strict must fail fast"
      | exception Fault.Injected _ -> ())

(* a fully-degraded pipeline (every analysis failed) must still profile
   without crashing — the VM's counter array is rounded up to length 1
   even for an empty plan — and the estimate must fail structurally,
   because the main program is the root of the estimate *)
let fully_degraded_pipeline () =
  let src = S89_workloads.Demos.fig1 () in
  let t =
    Fault.with_spec (Some (spec_of "analysis_raise:1.0,seed:3")) (fun () ->
        Pipeline.of_source src)
  in
  check cb "no analyses left" true (Hashtbl.length t.Pipeline.analyses = 0);
  let profile = Pipeline.profile_smart ~runs:2 t in
  check Alcotest.int "no counters planned" 0 (Array.length profile.Pipeline.counters);
  (match Pipeline.estimate_profiled t profile with
  | _ -> Alcotest.fail "estimate must reject an un-analyzed main program"
  | exception Analysis.Unanalyzable { proc; _ } ->
      check Alcotest.string "names the main program" t.Pipeline.prog.Program.main proc);
  match Pipeline.estimate_oracle t (Pipeline.run_once t) with
  | _ -> Alcotest.fail "oracle estimate must reject an un-analyzed main program"
  | exception Analysis.Unanalyzable _ -> ()

(* ---------------- execution guards ---------------- *)

let looping_src =
  "PROGRAM SPIN\n  DO I = 1, 100000\n    X = X + 1.0\n  ENDDO\nEND\n"

let recursive_src =
  "PROGRAM M\n  CALL R(1.0)\nEND\nSUBROUTINE R(X)\n  CALL R(X)\nEND\n"

let all_backends = [ Interp.Tree; Interp.Compiled; Interp.Bytecode ]

(* Run [prog] under [config] on every backend; each must trip the same
   guard at exactly the same step and cycle count. *)
let check_guard_trips_identically what config prog expected_code =
  let results =
    List.map
      (fun backend ->
        let vm = Interp.create ~config:{ config with Interp.backend } prog in
        match Interp.run_result vm with
        | Error d ->
            check Alcotest.string (what ^ ": code") expected_code d.Diag.code;
            (Interp.steps vm, Interp.cycles vm)
        | Ok _ -> Alcotest.failf "%s: expected %s guard" what expected_code)
      all_backends
  in
  match results with
  | ref :: rest ->
      List.iter
        (fun (s, c) ->
          check ci (what ^ ": trip steps agree") (fst ref) s;
          check ci (what ^ ": trip cycles agree") (snd ref) c)
        rest
  | [] -> ()

let guard_out_of_fuel () =
  let prog = Program.of_source looping_src in
  check_guard_trips_identically "fuel"
    { Interp.default_config with max_steps = 100 }
    prog "RUN002"

let guard_out_of_cycles () =
  let prog = Program.of_source looping_src in
  check_guard_trips_identically "cycles"
    { Interp.default_config with max_cycles = 1000 }
    prog "RUN003"

let guard_call_depth () =
  let prog = Program.of_source recursive_src in
  check_guard_trips_identically "depth"
    { Interp.default_config with max_call_depth = 32 }
    prog "RUN004"

(* Counter saturation (RUN005): a bulk probe that adds [max_int] twice
   must saturate the counter at [max_int] — not wrap — and report the
   same overflowed-counter set and diagnostics on every backend. *)
let guard_saturation_identical () =
  let prog = Program.of_source looping_src in
  let p = S89_frontend.Program.find prog "SPIN" in
  let num_nodes = S89_cfg.Cfg.num_nodes p.S89_frontend.Program.cfg in
  let instr = S89_vm.Probe.make ~n_counters:1 in
  S89_vm.Probe.add_node_action instr ~proc:"SPIN" ~num_nodes ~node:0
    (S89_vm.Probe.Bulk_add (0, S89_frontend.Ast.Int max_int));
  S89_vm.Probe.add_node_action instr ~proc:"SPIN" ~num_nodes ~node:0
    (S89_vm.Probe.Bulk_add (0, S89_frontend.Ast.Int max_int));
  List.iter
    (fun backend ->
      let vm =
        Interp.create ~config:{ Interp.default_config with instr; backend } prog
      in
      (match Interp.run_result vm with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "unexpected %s" d.Diag.code);
      check ci "counter saturates at max_int" max_int (Interp.counters vm).(0);
      check cb "counter 0 reported overflowed" true
        (Interp.counter_overflowed vm = [ 0 ]);
      check cb "one RUN005 diagnostic" true
        (match Interp.diagnostics vm with
        | [ d ] -> d.Diag.code = "RUN005"
        | _ -> false))
    all_backends

let guard_clean_run_no_diags () =
  let prog = Program.of_source (S89_workloads.Demos.fig1 ()) in
  let vm = Interp.create prog in
  (match Interp.run_result vm with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "unexpected %s" d.Diag.code);
  check cb "no overflow" true (Interp.counter_overflowed vm = []);
  check cb "no diagnostics" true (Interp.diagnostics vm = [])

(* ---------------- per-item budgets ---------------- *)

let budget_reports_slow_items () =
  let pool = Pool.create ~domains:1 () in
  let f i = if i = 3 then Unix.sleepf 0.05 in
  let _, report =
    Pool.mapi_budgeted pool ~budget:0.01 (fun i () -> f i) (Array.make 6 ())
  in
  check ci "one overrun" 1 (List.length report.Pool.over_budget);
  (match report.Pool.over_budget with
  | [ (3, d) ] -> check cb "duration recorded" true (d >= 0.01)
  | _ -> Alcotest.fail "expected item 3 over budget");
  let _, clean =
    Pool.map_budgeted pool ~budget:10.0 (fun () -> ()) (Array.make 6 ())
  in
  check cb "fast items clean" true (clean = Pool.no_overruns)

let budget_validates () =
  let pool = Pool.create ~domains:1 () in
  match Pool.map_budgeted pool ~budget:0.0 (fun () -> ()) [| () |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let chunked_budget () =
  let pool = Pool.create ~force_parallel:true ~domains:2 () in
  let arr = Array.init 16 Fun.id in
  let out, report =
    Chunked.map_budgeted pool ~budget:0.01
      (fun i -> if i = 5 then Unix.sleepf 0.05; i * 2)
      arr
  in
  check (Alcotest.array ci) "results intact" (Array.map (fun i -> i * 2) arr) out;
  check cb "slow item reported" true
    (List.mem_assoc 5 report.Pool.over_budget)

(* ---------------- pipeline degradation ---------------- *)

(* replace one procedure's CFG with an irreducible tangle, as if lowering
   had produced something the interval analysis cannot handle *)
let sabotage prog victim =
  Program.map_cfgs prog (fun p ->
      if p.Program.name <> victim then p.Program.cfg
      else begin
        let dummy = { Ir.ir = Ir.Nop "BAD"; src_label = None } in
        let cfg = Cfg.create ~dummy in
        let e = Cfg.add_node cfg dummy in
        let a = Cfg.add_node cfg dummy in
        let b = Cfg.add_node cfg dummy in
        List.iter
          (fun (u, v, l) -> Cfg.add_edge cfg ~src:u ~dst:v ~label:l)
          [ (e, a, Label.T); (e, b, Label.F); (a, b, Label.U); (b, a, Label.U) ];
        Cfg.set_entry cfg e;
        Cfg.set_exits cfg [ b ];
        cfg
      end)

let two_proc_src =
  "PROGRAM M\n  X = 1.0\n  CALL H(X)\n  Y = X\nEND\n\
   SUBROUTINE H(V)\n  V = V + 1.0\nEND\n"

let pipeline_degrades () =
  let prog = sabotage (Program.of_source two_proc_src) "H" in
  let t = Pipeline.create prog in
  (match Pipeline.diagnostics t with
  | [ d ] ->
      check Alcotest.string "code" "ANA001" d.Diag.code;
      check (Alcotest.option Alcotest.string) "proc" (Some "H") d.Diag.proc
  | ds -> Alcotest.failf "expected exactly one diagnostic, got %d" (List.length ds));
  check cb "main still analyzed" true (Hashtbl.mem t.Pipeline.analyses "M");
  check cb "bad proc skipped" false (Hashtbl.mem t.Pipeline.analyses "H");
  (* the estimator treats the skipped procedure's calls as opaque and warns *)
  let warned = ref [] in
  let est =
    Interproc.estimate ~on_diag:(fun d -> warned := d :: !warned) prog
      t.Pipeline.analyses
      ~totals:(fun name ->
        let a = Hashtbl.find t.Pipeline.analyses name in
        let tbl = Hashtbl.create 8 in
        List.iter (fun c -> Hashtbl.replace tbl c 0) a.Analysis.conditions;
        tbl)
  in
  check cb "estimate exists for main" true (Float.is_finite (Interproc.program_time est));
  check cb "opaque-call warning emitted" true
    (List.exists (fun d -> d.Diag.code = "ANA003") !warned)

let pipeline_strict_fail_fast () =
  let prog = sabotage (Program.of_source two_proc_src) "H" in
  match Pipeline.create ~strict:true prog with
  | _ -> Alcotest.fail "strict must raise"
  | exception Analysis.Unanalyzable { proc = "H"; _ } -> ()

(* a loop re-entered around its header is rejected, not silently
   mis-estimated (found by the fuzzer: a GOTO from after a DO loop back
   into its body keeps the CFG reducible but breaks the frequency laws) *)
let reentrant_loop_rejected () =
  let src =
    "PROGRAM P\n\
    \  DO I = 1, 8\n\
    \    140 X = X + 1.0\n\
    \  ENDDO\n\
    \  Y = Y + 1.0\n\
    \  IF (Y .GT. 4.0) THEN\n\
    \    GOTO 140\n\
    \  ENDIF\n\
    \  Z = X\n\
    END\n"
  in
  match Program.of_source_result src with
  | Error _ -> () (* fine: the frontend may reject backward GOTOs outright *)
  | Ok prog -> (
      let t = Pipeline.create prog in
      match Pipeline.diagnostics t with
      | [] ->
          (* if it analyzes, reconstruction must be exact *)
          let vm = Pipeline.run_once t in
          let est = Pipeline.estimate_oracle t vm in
          let measured = float_of_int (Interp.cycles vm) in
          let predicted = Interproc.program_time est in
          check cb "reconstruction exact" true
            (Float.abs (measured -. predicted) <= 1e-6 *. (1.0 +. measured))
      | [ d ] -> check Alcotest.string "structured rejection" "ANA001" d.Diag.code
      | ds -> Alcotest.failf "expected 0/1 diagnostics, got %d" (List.length ds))

let suite =
  [
    Alcotest.test_case "diag: exit codes per family" `Quick diag_exit_codes;
    Alcotest.test_case "diag: rendering" `Quick diag_rendering;
    Alcotest.test_case "frontend: rejects per code" `Quick frontend_rejects;
    Alcotest.test_case "frontend: located diagnostics" `Quick frontend_diag_has_line;
    Alcotest.test_case "db: save/load/save stable" `Quick db_roundtrip_stable;
    Alcotest.test_case "db: header + checksum" `Quick db_header_and_checksum;
    Alcotest.test_case "db: truncation detected, repairable" `Quick db_truncated;
    Alcotest.test_case "db: corruption detected" `Quick db_corrupt_payload;
    Alcotest.test_case "db: unknown version rejected" `Quick db_bad_version;
    Alcotest.test_case "db: legacy v1 readable" `Quick db_legacy_v1;
    Alcotest.test_case "node split: fuel bound" `Quick node_split_gave_up;
    Alcotest.test_case "fault: spec parsing" `Quick fault_parse;
    Alcotest.test_case "fault: deterministic decisions" `Quick fault_determinism;
    Alcotest.test_case "fault: pool absorbs rare faults" `Quick pool_absorbs_faults;
    Alcotest.test_case "fault: certain fault escalates" `Quick pool_fault_escalates;
    Alcotest.test_case "fault: chunked absorbs rare faults" `Quick
      chunked_faults_deterministic;
    Alcotest.test_case "fault: analysis fault degrades pipeline" `Quick
      analysis_fault_degrades;
    Alcotest.test_case "faults: fully degraded pipeline" `Quick
      fully_degraded_pipeline;
    Alcotest.test_case "guard: out of fuel" `Quick guard_out_of_fuel;
    Alcotest.test_case "guard: counter saturation identical across backends"
      `Quick guard_saturation_identical;
    Alcotest.test_case "guard: out of cycles (all backends)" `Quick
      guard_out_of_cycles;
    Alcotest.test_case "guard: call depth" `Quick guard_call_depth;
    Alcotest.test_case "guard: clean run has no diagnostics" `Quick
      guard_clean_run_no_diags;
    Alcotest.test_case "budget: slow items reported" `Quick budget_reports_slow_items;
    Alcotest.test_case "budget: validates" `Quick budget_validates;
    Alcotest.test_case "budget: chunked" `Quick chunked_budget;
    Alcotest.test_case "pipeline: degrades per procedure" `Quick pipeline_degrades;
    Alcotest.test_case "pipeline: strict fails fast" `Quick pipeline_strict_fail_fast;
    Alcotest.test_case "pipeline: re-entered loop rejected" `Quick
      reentrant_loop_rejected;
  ]
