(* PR-9 surface: the multi-tenant TCP service — wire protocol codecs
   (roundtrip + garbage rejection), bounded per-tenant admission with
   deterministic SWRR weighted-fair dequeue, the fixed-bucket latency
   histogram, and the server end-to-end over loopback: submit/status/
   result against a direct Service.batch reference, NET001 overflow
   rejection at saturation, SRV004 deadline expiry with partial
   results, and graceful stop → restart → byte-identical resume. *)

module Proto = S89_net.Proto
module Admission = S89_net.Admission
module Server = S89_net.Server
module Histogram = S89_exec.Histogram
module Service = S89_core.Service
module Diag = S89_diag.Diag

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string
let csl = Alcotest.(list string)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_tmp_dir f =
  let dir = Filename.temp_file "s89net" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> try rm_rf dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

let fig1 = S89_workloads.Demos.fig1 ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---------------- wire protocol ---------------- *)

let proto_roundtrip () =
  let reqs =
    [ Proto.Submit
        { tenant = "acme"; job = "j-1"; runs = 40; seed = 7; deadline = 2.5;
          source = fig1 };
      Proto.Submit
        { tenant = "a"; job = "b"; runs = 1; seed = 0; deadline = 0.0;
          source = "" };
      Proto.Status { tenant = "acme"; job = "j-1" };
      Proto.Result { tenant = "t.x"; job = "y_2" }; Proto.Metrics ]
  in
  List.iter
    (fun r ->
      match Proto.decode_request (Proto.encode_request r) with
      | Ok r' -> check cb "request roundtrips" true (r = r')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    reqs;
  let resps =
    [ Proto.Accepted { job = "j-1" };
      Proto.Rejected { retry_after = 1.5; reason = "NET001 queue full" };
      Proto.Job_status { state = "running"; completed = 3; total = 10 };
      Proto.Job_result { state = "done"; body = "line1\nline2\n" };
      Proto.Metrics_text "s89_jobs_done 4\n";
      Proto.Error_resp { code = "NET002"; message = "bad frame" } ]
  in
  List.iter
    (fun r ->
      match Proto.decode_response (Proto.encode_response r) with
      | Ok r' -> check cb "response roundtrips" true (r = r')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    resps;
  (* framing roundtrip, including payloads that look like headers *)
  List.iter
    (fun p ->
      match Proto.unframe (Proto.frame p) with
      | Ok p' -> check cs "frame roundtrips" p p'
      | Error e -> Alcotest.failf "unframe failed: %s" e)
    [ ""; "x"; "s89 3 abc\nxyz"; String.make 4096 'q' ]

let proto_rejects_garbage () =
  let bad_frames =
    [ ""; "junk"; "s89 5 zz\nhello"; "s89 -1 0000000000000000\n";
      "s89 999999999999 0000000000000000\npayload";
      Printf.sprintf "s89 %d 0000000000000000\n%s" (Proto.max_frame + 1) "x";
      (* right length, wrong checksum *)
      "s89 3 0000000000000000\nabc";
      (* truncated payload *)
      (let f = Proto.frame "hello world" in String.sub f 0 (String.length f - 3))
    ]
  in
  List.iter
    (fun raw ->
      match Proto.unframe raw with
      | Ok _ -> Alcotest.failf "accepted garbage frame %S" raw
      | Error _ -> ())
    bad_frames;
  let bad_reqs =
    [ ""; "launch x y"; "submit onlytenant"; "submit te nant job 1 2 3";
      "submit ../evil job 5 1 0\nsrc"; "submit t j notanint 1 0\nsrc";
      "submit t j 0 1 0\nsrc"; "submit t j 5 1 -2\nsrc";
      "submit t j 5 1 nan\nsrc"; "status only"; "metrics extra" ]
  in
  List.iter
    (fun p ->
      match Proto.decode_request p with
      | Ok _ -> Alcotest.failf "accepted garbage request %S" p
      | Error _ -> ())
    bad_reqs;
  check cb "oversized name rejected" false (Proto.name_ok (String.make 65 'a'));
  check cb "path traversal rejected" false (Proto.name_ok "../x");
  check cb "slash rejected" false (Proto.name_ok "a/b")

(* ---------------- admission ---------------- *)

let admission_bounds () =
  let a = Admission.create ~capacity:2 ~weights:[] () in
  check cb "first submit ok" true (Admission.submit a ~tenant:"t" 1 = Ok 1);
  check cb "second submit ok" true (Admission.submit a ~tenant:"t" 2 = Ok 2);
  (match Admission.submit a ~tenant:"t" 3 with
  | Error (`Full d) -> check ci "overflow reports depth" 2 d
  | _ -> Alcotest.fail "third submit must overflow");
  check cb "force bypasses the bound" true
    (Admission.submit ~force:true a ~tenant:"t" 4 = Ok 3);
  check ci "depth" 3 (Admission.depth a ~tenant:"t");
  check cb "other tenants unaffected" true (Admission.submit a ~tenant:"u" 9 = Ok 1);
  Admission.close a;
  check cb "closed refuses" true (Admission.submit a ~tenant:"t" 5 = Error `Closed);
  (* queued work still drains after close, then takers get None *)
  let drained = ref [] in
  let rec drain () =
    match Admission.take a with
    | Some (_, v) ->
        drained := v :: !drained;
        drain ()
    | None -> ()
  in
  drain ();
  check ci "close drains the backlog" 4 (List.length !drained)

(* the SWRR golden order: A at weight 2, B and C at weight 1, all
   backlogged — the service pattern must be A B C A A B C A *)
let admission_swrr_golden () =
  let a = Admission.create ~capacity:8 ~weights:[ ("A", 2); ("B", 1); ("C", 1) ] () in
  List.iter (fun t -> ignore (Admission.submit a ~tenant:t t)) [ "A"; "A"; "A"; "A" ];
  List.iter (fun t -> ignore (Admission.submit a ~tenant:t t)) [ "B"; "B" ];
  List.iter (fun t -> ignore (Admission.submit a ~tenant:t t)) [ "C"; "C" ];
  Admission.close a;
  let rec drain acc =
    match Admission.take a with
    | Some (tenant, _) -> drain (tenant :: acc)
    | None -> List.rev acc
  in
  check csl "weighted-fair order" [ "A"; "B"; "C"; "A"; "A"; "B"; "C"; "A" ]
    (drain [])

(* ---------------- histogram ---------------- *)

let histogram_quantiles () =
  let h = Histogram.create ~lo:0.001 ~hi:10.0 ~buckets_per_decade:1 () in
  List.iter (Histogram.observe h) [ 0.0005; 0.005; 0.05; 0.5; 5.0 ];
  check ci "count" 5 (Histogram.count h);
  check (Alcotest.float 1e-9) "p50 = bucket upper bound" 0.1
    (Histogram.quantile h 0.5);
  check (Alcotest.float 1e-9) "p100" 10.0 (Histogram.quantile h 1.0);
  Histogram.observe h 50.0;
  check (Alcotest.float 1e-9) "overflow answers max observed" 50.0
    (Histogram.quantile h 1.0);
  check cb "mean tracks the sum" true
    (abs_float (Histogram.mean h -. (55.5555 /. 6.0)) < 1e-3);
  Histogram.reset h;
  check ci "reset clears count" 0 (Histogram.count h);
  check (Alcotest.float 1e-9) "reset clears quantiles" 0.0
    (Histogram.quantile h 0.99)

(* ---------------- server end-to-end ---------------- *)

let quick_config =
  { Server.default_config with Server.fsync = false; workers = 2 }

let with_server ?(config = quick_config) f =
  with_tmp_dir @@ fun root ->
  let t = Server.start ~config ~store_root:(Filename.concat root "jobs") () in
  Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f root t)

let rpc t req =
  let fd = Server.Client.connect ~port:(Server.port t) () in
  Fun.protect ~finally:(fun () -> Server.Client.close fd) @@ fun () ->
  match Server.Client.rpc fd req with
  | Ok r -> r
  | Error m -> Alcotest.failf "rpc failed: %s" m

let poll_state ?(tries = 2000) t ~tenant ~job pred =
  let rec go n last =
    if n = 0 then Alcotest.failf "timed out polling job (last state %s)" last
    else
      match rpc t (Proto.Status { tenant; job }) with
      | Proto.Job_status { state; _ } when pred state -> state
      | Proto.Job_status { state; _ } ->
          Thread.delay 0.005;
          go (n - 1) state
      | _ -> Alcotest.fail "status request must answer Job_status"
  in
  go tries "?"

let reference_report ~runs ~seed =
  with_tmp_dir @@ fun root ->
  match
    Service.batch ~fsync:false ~resume:false ~runs ~seed
      ~dir:(Filename.concat root "store") fig1
  with
  | Ok (Service.Completed { report; _ }) -> report
  | Ok (Service.Interrupted _) -> Alcotest.fail "reference must complete"
  | Error d -> Alcotest.failf "reference batch failed: %s" (Diag.to_string d)

let server_end_to_end () =
  let expected = reference_report ~runs:25 ~seed:3 in
  with_server @@ fun _root t ->
  (match
     rpc t
       (Proto.Submit
          { tenant = "alice"; job = "j1"; runs = 25; seed = 3; deadline = 0.0;
            source = fig1 })
   with
  | Proto.Accepted { job } -> check cs "acked job name" "j1" job
  | r -> Alcotest.failf "submit rejected: %s" (Proto.encode_response r));
  ignore (poll_state t ~tenant:"alice" ~job:"j1" (fun s -> s = "done"));
  (match rpc t (Proto.Status { tenant = "alice"; job = "j1" }) with
  | Proto.Job_status { state; completed; total } ->
      check cs "done" "done" state;
      check ci "completed" 25 completed;
      check ci "total" 25 total
  | _ -> Alcotest.fail "expected Job_status");
  (match rpc t (Proto.Result { tenant = "alice"; job = "j1" }) with
  | Proto.Job_result { state; body } ->
      check cs "result state" "done" state;
      check cs "TCP result = direct batch report" expected body
  | _ -> Alcotest.fail "expected Job_result");
  (* idempotent resubmit of a finished job re-acks *)
  (match
     rpc t
       (Proto.Submit
          { tenant = "alice"; job = "j1"; runs = 25; seed = 3; deadline = 0.0;
            source = fig1 })
   with
  | Proto.Accepted _ -> ()
  | _ -> Alcotest.fail "resubmit of finished job must re-ack");
  (match rpc t (Proto.Status { tenant = "alice"; job = "nope" }) with
  | Proto.Job_status { state; _ } -> check cs "unknown job" "unknown" state
  | _ -> Alcotest.fail "expected Job_status");
  match rpc t Proto.Metrics with
  | Proto.Metrics_text text ->
      check cb "metrics counts the job" true (contains text "s89_jobs_done 1");
      check cb "metrics reports latency" true
        (contains text "s89_job_latency_seconds_count 1")
  | _ -> Alcotest.fail "expected Metrics_text"

let server_overload_rejects () =
  let config = { quick_config with Server.workers = 1; queue_capacity = 1 } in
  with_server ~config @@ fun _root t ->
  let submit job runs =
    rpc t
      (Proto.Submit
         { tenant = "busy"; job; runs; seed = 1; deadline = 0.0; source = fig1 })
  in
  (* a long job occupies the single worker... *)
  (match submit "long" 500_000 with
  | Proto.Accepted _ -> ()
  | _ -> Alcotest.fail "long job must be accepted");
  ignore (poll_state t ~tenant:"busy" ~job:"long" (fun s -> s = "running"));
  (* ...the next fills the queue (capacity 1)... *)
  (match submit "queued" 5 with
  | Proto.Accepted _ -> ()
  | _ -> Alcotest.fail "second job must queue");
  (* ...and the third is shed immediately with NET001 + retry-after *)
  (match submit "shed" 5 with
  | Proto.Rejected { retry_after; reason } ->
      check cb "positive retry-after" true (retry_after > 0.0);
      check cb "reason names NET001" true
        (String.length reason >= 6 && String.sub reason 0 6 = "NET001")
  | r -> Alcotest.failf "third job must be rejected, got %s" (Proto.encode_response r));
  match rpc t Proto.Metrics with
  | Proto.Metrics_text text ->
      check cb "rejection counted" true (contains text "s89_jobs_rejected 1");
      check cb "queue depth visible" true
        (contains text "s89_queue_depth{tenant=\"busy\"} 1")
  | _ -> Alcotest.fail "expected Metrics_text"

let server_deadline_expires () =
  with_server @@ fun _root t ->
  (match
     rpc t
       (Proto.Submit
          { tenant = "dl"; job = "slow"; runs = 5_000_000; seed = 1;
            deadline = 0.15; source = fig1 })
   with
  | Proto.Accepted _ -> ()
  | _ -> Alcotest.fail "submit must be accepted");
  ignore (poll_state t ~tenant:"dl" ~job:"slow" (fun s -> s = "expired"));
  (match rpc t (Proto.Status { tenant = "dl"; job = "slow" }) with
  | Proto.Job_status { state; completed; total } ->
      check cs "expired" "expired" state;
      check cb "partial progress recorded" true (completed > 0 && completed < total)
  | _ -> Alcotest.fail "expected Job_status");
  match rpc t (Proto.Result { tenant = "dl"; job = "slow" }) with
  | Proto.Job_result { state; body } ->
      check cs "result state" "expired" state;
      check cb "partial estimate preserved" true
        (String.length body > 0
        && String.sub body 0 16 = "program estimate")
  | _ -> Alcotest.fail "expected Job_result"

let server_restart_resumes () =
  let expected = reference_report ~runs:4000 ~seed:5 in
  with_tmp_dir @@ fun root ->
  let store_root = Filename.concat root "jobs" in
  let config = { quick_config with Server.workers = 1 } in
  let t1 = Server.start ~config ~store_root () in
  (match
     rpc t1
       (Proto.Submit
          { tenant = "r"; job = "big"; runs = 4000; seed = 5; deadline = 0.0;
            source = fig1 })
   with
  | Proto.Accepted _ -> ()
  | _ -> Alcotest.fail "submit must be accepted");
  ignore (poll_state t1 ~tenant:"r" ~job:"big" (fun s -> s = "running"));
  (* graceful stop mid-batch: completed runs are durable in the WAL *)
  Server.stop t1;
  let t2 = Server.start ~config ~store_root () in
  Fun.protect ~finally:(fun () -> Server.stop t2) @@ fun () ->
  ignore (poll_state t2 ~tenant:"r" ~job:"big" (fun s -> s = "done"));
  match rpc t2 (Proto.Result { tenant = "r"; job = "big" }) with
  | Proto.Job_result { body; _ } ->
      check cs "resumed report byte-identical to uninterrupted run" expected body
  | _ -> Alcotest.fail "expected Job_result"

let suite =
  [
    Alcotest.test_case "proto: codecs roundtrip" `Quick proto_roundtrip;
    Alcotest.test_case "proto: garbage rejected (NET002)" `Quick proto_rejects_garbage;
    Alcotest.test_case "admission: bounded per tenant" `Quick admission_bounds;
    Alcotest.test_case "admission: SWRR golden order" `Quick admission_swrr_golden;
    Alcotest.test_case "histogram: bucketed quantiles" `Quick histogram_quantiles;
    Alcotest.test_case "server: submit/status/result = direct batch" `Quick
      server_end_to_end;
    Alcotest.test_case "server: overflow shed with NET001" `Quick
      server_overload_rejects;
    Alcotest.test_case "server: deadline expiry keeps partial (SRV004)" `Quick
      server_deadline_expires;
    Alcotest.test_case "server: restart resumes byte-identically" `Quick
      server_restart_resumes;
  ]
