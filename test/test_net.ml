(* PR-9 surface: the multi-tenant TCP service — wire protocol codecs
   (roundtrip + garbage rejection), bounded per-tenant admission with
   deterministic SWRR weighted-fair dequeue, the fixed-bucket latency
   histogram, and the server end-to-end over loopback: submit/status/
   result against a direct Service.batch reference, NET001 overflow
   rejection at saturation, SRV004 deadline expiry with partial
   results, and graceful stop → restart → byte-identical resume.

   PR-10 surface: resource governance — the token-bucket/quota gate
   (QCheck window bound + NET004 end-to-end), mid-stream SWRR
   reweighting, store GC (retention, size bound, tombstone sweep on
   recovery), the SRV007 disk-pressure breaker under injected ENOSPC,
   the slowloris frame deadline, and the client backoff schedule. *)

module Proto = S89_net.Proto
module Admission = S89_net.Admission
module Quota = S89_net.Quota
module Server = S89_net.Server
module Histogram = S89_exec.Histogram
module Service = S89_core.Service
module Diag = S89_diag.Diag
module Fault = S89_util.Fault

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string
let csl = Alcotest.(list string)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_tmp_dir f =
  let dir = Filename.temp_file "s89net" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> try rm_rf dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () -> f dir)

let fig1 = S89_workloads.Demos.fig1 ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---------------- wire protocol ---------------- *)

let proto_roundtrip () =
  let reqs =
    [ Proto.Submit
        { tenant = "acme"; job = "j-1"; runs = 40; seed = 7; deadline = 2.5;
          source = fig1 };
      Proto.Submit
        { tenant = "a"; job = "b"; runs = 1; seed = 0; deadline = 0.0;
          source = "" };
      Proto.Status { tenant = "acme"; job = "j-1" };
      Proto.Result { tenant = "t.x"; job = "y_2" }; Proto.Metrics ]
  in
  List.iter
    (fun r ->
      match Proto.decode_request (Proto.encode_request r) with
      | Ok r' -> check cb "request roundtrips" true (r = r')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    reqs;
  let resps =
    [ Proto.Accepted { job = "j-1" };
      Proto.Rejected { retry_after = 1.5; reason = "NET001 queue full" };
      Proto.Job_status { state = "running"; completed = 3; total = 10 };
      Proto.Job_result { state = "done"; body = "line1\nline2\n" };
      Proto.Metrics_text "s89_jobs_done 4\n";
      Proto.Error_resp { code = "NET002"; message = "bad frame" } ]
  in
  List.iter
    (fun r ->
      match Proto.decode_response (Proto.encode_response r) with
      | Ok r' -> check cb "response roundtrips" true (r = r')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    resps;
  (* framing roundtrip, including payloads that look like headers *)
  List.iter
    (fun p ->
      match Proto.unframe (Proto.frame p) with
      | Ok p' -> check cs "frame roundtrips" p p'
      | Error e -> Alcotest.failf "unframe failed: %s" e)
    [ ""; "x"; "s89 3 abc\nxyz"; String.make 4096 'q' ]

let proto_rejects_garbage () =
  let bad_frames =
    [ ""; "junk"; "s89 5 zz\nhello"; "s89 -1 0000000000000000\n";
      "s89 999999999999 0000000000000000\npayload";
      Printf.sprintf "s89 %d 0000000000000000\n%s" (Proto.max_frame + 1) "x";
      (* right length, wrong checksum *)
      "s89 3 0000000000000000\nabc";
      (* truncated payload *)
      (let f = Proto.frame "hello world" in String.sub f 0 (String.length f - 3))
    ]
  in
  List.iter
    (fun raw ->
      match Proto.unframe raw with
      | Ok _ -> Alcotest.failf "accepted garbage frame %S" raw
      | Error _ -> ())
    bad_frames;
  let bad_reqs =
    [ ""; "launch x y"; "submit onlytenant"; "submit te nant job 1 2 3";
      "submit ../evil job 5 1 0\nsrc"; "submit t j notanint 1 0\nsrc";
      "submit t j 0 1 0\nsrc"; "submit t j 5 1 -2\nsrc";
      "submit t j 5 1 nan\nsrc"; "status only"; "metrics extra" ]
  in
  List.iter
    (fun p ->
      match Proto.decode_request p with
      | Ok _ -> Alcotest.failf "accepted garbage request %S" p
      | Error _ -> ())
    bad_reqs;
  check cb "oversized name rejected" false (Proto.name_ok (String.make 65 'a'));
  check cb "path traversal rejected" false (Proto.name_ok "../x");
  check cb "slash rejected" false (Proto.name_ok "a/b")

(* ---------------- admission ---------------- *)

let admission_bounds () =
  let a = Admission.create ~capacity:2 ~weights:[] () in
  check cb "first submit ok" true (Admission.submit a ~tenant:"t" 1 = Ok 1);
  check cb "second submit ok" true (Admission.submit a ~tenant:"t" 2 = Ok 2);
  (match Admission.submit a ~tenant:"t" 3 with
  | Error (`Full d) -> check ci "overflow reports depth" 2 d
  | _ -> Alcotest.fail "third submit must overflow");
  check cb "force bypasses the bound" true
    (Admission.submit ~force:true a ~tenant:"t" 4 = Ok 3);
  check ci "depth" 3 (Admission.depth a ~tenant:"t");
  check cb "other tenants unaffected" true (Admission.submit a ~tenant:"u" 9 = Ok 1);
  Admission.close a;
  check cb "closed refuses" true (Admission.submit a ~tenant:"t" 5 = Error `Closed);
  (* queued work still drains after close, then takers get None *)
  let drained = ref [] in
  let rec drain () =
    match Admission.take a with
    | Some (_, v) ->
        drained := v :: !drained;
        drain ()
    | None -> ()
  in
  drain ();
  check ci "close drains the backlog" 4 (List.length !drained)

(* the SWRR golden order: A at weight 2, B and C at weight 1, all
   backlogged — the service pattern must be A B C A A B C A *)
let admission_swrr_golden () =
  let a = Admission.create ~capacity:8 ~weights:[ ("A", 2); ("B", 1); ("C", 1) ] () in
  List.iter (fun t -> ignore (Admission.submit a ~tenant:t t)) [ "A"; "A"; "A"; "A" ];
  List.iter (fun t -> ignore (Admission.submit a ~tenant:t t)) [ "B"; "B" ];
  List.iter (fun t -> ignore (Admission.submit a ~tenant:t t)) [ "C"; "C" ];
  Admission.close a;
  let rec drain acc =
    match Admission.take a with
    | Some (tenant, _) -> drain (tenant :: acc)
    | None -> List.rev acc
  in
  check csl "weighted-fair order" [ "A"; "B"; "C"; "A"; "A"; "B"; "C"; "A" ]
    (drain [])

(* ---------------- histogram ---------------- *)

let histogram_quantiles () =
  let h = Histogram.create ~lo:0.001 ~hi:10.0 ~buckets_per_decade:1 () in
  List.iter (Histogram.observe h) [ 0.0005; 0.005; 0.05; 0.5; 5.0 ];
  check ci "count" 5 (Histogram.count h);
  check (Alcotest.float 1e-9) "p50 = bucket upper bound" 0.1
    (Histogram.quantile h 0.5);
  check (Alcotest.float 1e-9) "p100" 10.0 (Histogram.quantile h 1.0);
  Histogram.observe h 50.0;
  check (Alcotest.float 1e-9) "overflow answers max observed" 50.0
    (Histogram.quantile h 1.0);
  check cb "mean tracks the sum" true
    (abs_float (Histogram.mean h -. (55.5555 /. 6.0)) < 1e-3);
  Histogram.reset h;
  check ci "reset clears count" 0 (Histogram.count h);
  check (Alcotest.float 1e-9) "reset clears quantiles" 0.0
    (Histogram.quantile h 0.99)

(* ---------------- server end-to-end ---------------- *)

let quick_config =
  { Server.default_config with Server.fsync = false; workers = 2 }

let with_server ?(config = quick_config) f =
  with_tmp_dir @@ fun root ->
  let t = Server.start ~config ~store_root:(Filename.concat root "jobs") () in
  Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f root t)

let rpc t req =
  let fd = Server.Client.connect ~port:(Server.port t) () in
  Fun.protect ~finally:(fun () -> Server.Client.close fd) @@ fun () ->
  match Server.Client.rpc fd req with
  | Ok r -> r
  | Error m -> Alcotest.failf "rpc failed: %s" m

let poll_state ?(tries = 2000) t ~tenant ~job pred =
  let rec go n last =
    if n = 0 then Alcotest.failf "timed out polling job (last state %s)" last
    else
      match rpc t (Proto.Status { tenant; job }) with
      | Proto.Job_status { state; _ } when pred state -> state
      | Proto.Job_status { state; _ } ->
          Thread.delay 0.005;
          go (n - 1) state
      | _ -> Alcotest.fail "status request must answer Job_status"
  in
  go tries "?"

let reference_report ~runs ~seed =
  with_tmp_dir @@ fun root ->
  match
    Service.batch ~fsync:false ~resume:false ~runs ~seed
      ~dir:(Filename.concat root "store") fig1
  with
  | Ok (Service.Completed { report; _ }) -> report
  | Ok (Service.Interrupted _) -> Alcotest.fail "reference must complete"
  | Error d -> Alcotest.failf "reference batch failed: %s" (Diag.to_string d)

let server_end_to_end () =
  let expected = reference_report ~runs:25 ~seed:3 in
  with_server @@ fun _root t ->
  (match
     rpc t
       (Proto.Submit
          { tenant = "alice"; job = "j1"; runs = 25; seed = 3; deadline = 0.0;
            source = fig1 })
   with
  | Proto.Accepted { job } -> check cs "acked job name" "j1" job
  | r -> Alcotest.failf "submit rejected: %s" (Proto.encode_response r));
  ignore (poll_state t ~tenant:"alice" ~job:"j1" (fun s -> s = "done"));
  (match rpc t (Proto.Status { tenant = "alice"; job = "j1" }) with
  | Proto.Job_status { state; completed; total } ->
      check cs "done" "done" state;
      check ci "completed" 25 completed;
      check ci "total" 25 total
  | _ -> Alcotest.fail "expected Job_status");
  (match rpc t (Proto.Result { tenant = "alice"; job = "j1" }) with
  | Proto.Job_result { state; body } ->
      check cs "result state" "done" state;
      check cs "TCP result = direct batch report" expected body
  | _ -> Alcotest.fail "expected Job_result");
  (* idempotent resubmit of a finished job re-acks *)
  (match
     rpc t
       (Proto.Submit
          { tenant = "alice"; job = "j1"; runs = 25; seed = 3; deadline = 0.0;
            source = fig1 })
   with
  | Proto.Accepted _ -> ()
  | _ -> Alcotest.fail "resubmit of finished job must re-ack");
  (match rpc t (Proto.Status { tenant = "alice"; job = "nope" }) with
  | Proto.Job_status { state; _ } -> check cs "unknown job" "unknown" state
  | _ -> Alcotest.fail "expected Job_status");
  match rpc t Proto.Metrics with
  | Proto.Metrics_text text ->
      check cb "metrics counts the job" true (contains text "s89_jobs_done 1");
      check cb "metrics reports latency" true
        (contains text "s89_job_latency_seconds_count 1")
  | _ -> Alcotest.fail "expected Metrics_text"

let server_overload_rejects () =
  let config = { quick_config with Server.workers = 1; queue_capacity = 1 } in
  with_server ~config @@ fun _root t ->
  let submit job runs =
    rpc t
      (Proto.Submit
         { tenant = "busy"; job; runs; seed = 1; deadline = 0.0; source = fig1 })
  in
  (* a long job occupies the single worker... *)
  (match submit "long" 500_000 with
  | Proto.Accepted _ -> ()
  | _ -> Alcotest.fail "long job must be accepted");
  ignore (poll_state t ~tenant:"busy" ~job:"long" (fun s -> s = "running"));
  (* ...the next fills the queue (capacity 1)... *)
  (match submit "queued" 5 with
  | Proto.Accepted _ -> ()
  | _ -> Alcotest.fail "second job must queue");
  (* ...and the third is shed immediately with NET001 + retry-after *)
  (match submit "shed" 5 with
  | Proto.Rejected { retry_after; reason } ->
      check cb "positive retry-after" true (retry_after > 0.0);
      check cb "reason names NET001" true
        (String.length reason >= 6 && String.sub reason 0 6 = "NET001")
  | r -> Alcotest.failf "third job must be rejected, got %s" (Proto.encode_response r));
  match rpc t Proto.Metrics with
  | Proto.Metrics_text text ->
      check cb "rejection counted" true (contains text "s89_jobs_rejected 1");
      check cb "queue depth visible" true
        (contains text "s89_queue_depth{tenant=\"busy\"} 1")
  | _ -> Alcotest.fail "expected Metrics_text"

let server_deadline_expires () =
  with_server @@ fun _root t ->
  (match
     rpc t
       (Proto.Submit
          { tenant = "dl"; job = "slow"; runs = 5_000_000; seed = 1;
            deadline = 0.15; source = fig1 })
   with
  | Proto.Accepted _ -> ()
  | _ -> Alcotest.fail "submit must be accepted");
  ignore (poll_state t ~tenant:"dl" ~job:"slow" (fun s -> s = "expired"));
  (match rpc t (Proto.Status { tenant = "dl"; job = "slow" }) with
  | Proto.Job_status { state; completed; total } ->
      check cs "expired" "expired" state;
      check cb "partial progress recorded" true (completed > 0 && completed < total)
  | _ -> Alcotest.fail "expected Job_status");
  match rpc t (Proto.Result { tenant = "dl"; job = "slow" }) with
  | Proto.Job_result { state; body } ->
      check cs "result state" "expired" state;
      check cb "partial estimate preserved" true
        (String.length body > 0
        && String.sub body 0 16 = "program estimate")
  | _ -> Alcotest.fail "expected Job_result"

let server_restart_resumes () =
  let expected = reference_report ~runs:4000 ~seed:5 in
  with_tmp_dir @@ fun root ->
  let store_root = Filename.concat root "jobs" in
  let config = { quick_config with Server.workers = 1 } in
  let t1 = Server.start ~config ~store_root () in
  (match
     rpc t1
       (Proto.Submit
          { tenant = "r"; job = "big"; runs = 4000; seed = 5; deadline = 0.0;
            source = fig1 })
   with
  | Proto.Accepted _ -> ()
  | _ -> Alcotest.fail "submit must be accepted");
  ignore (poll_state t1 ~tenant:"r" ~job:"big" (fun s -> s = "running"));
  (* graceful stop mid-batch: completed runs are durable in the WAL *)
  Server.stop t1;
  let t2 = Server.start ~config ~store_root () in
  Fun.protect ~finally:(fun () -> Server.stop t2) @@ fun () ->
  ignore (poll_state t2 ~tenant:"r" ~job:"big" (fun s -> s = "done"));
  match rpc t2 (Proto.Result { tenant = "r"; job = "big" }) with
  | Proto.Job_result { body; _ } ->
      check cs "resumed report byte-identical to uninterrupted run" expected body
  | _ -> Alcotest.fail "expected Job_result"

(* ---------------- quota (PR-10) ---------------- *)

(* the token-bucket window bound: over ANY schedule of admissions and
   clock advances of total length T, a tenant is admitted at most
   burst + rate*T times — the defining property of a token bucket *)
let quota_window_prop =
  QCheck.Test.make ~count:300 ~name:"token bucket: admissions <= burst + rate*T"
    QCheck.(
      triple (int_range 1 5) (int_range 1 20)
        (small_list (pair (int_range 0 500) (int_range 0 5))))
    (fun (rate_i, burst, steps) ->
      let rate = float_of_int rate_i in
      let now = ref 0.0 in
      let q =
        Quota.create ~clock:(fun () -> !now)
          { Quota.rate; burst; max_bytes = 0; max_jobs = 0 }
      in
      let admitted = ref 0 in
      let total_dt = ref 0.0 in
      List.iter
        (fun (dt_ms, tries) ->
          let dt = float_of_int dt_ms /. 1000.0 in
          now := !now +. dt;
          total_dt := !total_dt +. dt;
          for _ = 1 to tries do
            match Quota.admit q ~tenant:"t" ~bytes:0 with
            | Ok () -> incr admitted
            | Error (Quota.Rate_limited { retry_after }) ->
                if retry_after <= 0.0 then
                  QCheck.Test.fail_report "retry_after must be positive"
            | Error _ -> QCheck.Test.fail_report "only rate rejections possible"
          done)
        steps;
      float_of_int !admitted
      <= float_of_int burst +. (rate *. !total_dt) +. 1e-6)

let quota_ledgers () =
  let q =
    Quota.create
      { Quota.rate = 0.0; burst = 0; max_bytes = 100; max_jobs = 2 }
  in
  check cb "first admit ok" true (Quota.admit q ~tenant:"a" ~bytes:40 = Ok ());
  check cb "second admit ok" true (Quota.admit q ~tenant:"a" ~bytes:40 = Ok ());
  (* job quota runs out before the byte quota here *)
  (match Quota.admit q ~tenant:"a" ~bytes:1 with
  | Error (Quota.Jobs_exceeded { used; limit }) ->
      check ci "jobs used" 2 used;
      check ci "jobs limit" 2 limit
  | _ -> Alcotest.fail "third job must exceed the job quota");
  (* release one job but keep its bytes: now bytes block *)
  Quota.charge q ~tenant:"a" ~bytes:0 ~jobs:(-1);
  (match Quota.admit q ~tenant:"a" ~bytes:40 with
  | Error (Quota.Bytes_exceeded { used; limit }) ->
      check ci "bytes used" 80 used;
      check ci "bytes limit" 100 limit
  | _ -> Alcotest.fail "byte quota must refuse");
  check cb "within bytes ok" true (Quota.admit q ~tenant:"a" ~bytes:20 = Ok ());
  (* a rejection must consume nothing *)
  check cb "usage" true (Quota.usage q ~tenant:"a" = (100, 2));
  (* other tenants have their own ledgers *)
  check cb "tenant isolation" true (Quota.admit q ~tenant:"b" ~bytes:99 = Ok ());
  (* charge clamps at zero *)
  Quota.charge q ~tenant:"b" ~bytes:(-1000) ~jobs:(-1000);
  check cb "clamped" true (Quota.usage q ~tenant:"b" = (0, 0))

(* ---------------- mid-stream reweighting ---------------- *)

(* SWRR golden order across a weight change: A at 3 vs B at 1 serves
   A A B A; after set_weight A 1 the pattern flips to strict
   alternation.  Hand-computed from the SWRR credit algebra. *)
let admission_set_weight_golden () =
  let a = Admission.create ~capacity:8 ~weights:[ ("A", 3); ("B", 1) ] () in
  for i = 1 to 5 do
    ignore (Admission.submit a ~tenant:"A" i)
  done;
  for i = 1 to 3 do
    ignore (Admission.submit a ~tenant:"B" i)
  done;
  let take_n n =
    List.init n (fun _ ->
        match Admission.take a with
        | Some (tenant, _) -> tenant
        | None -> Alcotest.fail "queue must not be drained yet")
  in
  check csl "before reweight: 3:1 service" [ "A"; "A"; "B"; "A" ] (take_n 4);
  check ci "weight getter" 3 (Admission.weight a ~tenant:"A");
  Admission.set_weight a ~tenant:"A" 1;
  check ci "weight updated" 1 (Admission.weight a ~tenant:"A");
  check csl "after reweight: alternation" [ "A"; "B"; "A"; "B" ] (take_n 4);
  (* downgrading clamps accumulated credit: a tenant that banked credit
     at a high weight cannot spend it after the downgrade *)
  let b = Admission.create ~capacity:8 ~weights:[ ("X", 5); ("Y", 1) ] () in
  for i = 1 to 4 do
    ignore (Admission.submit b ~tenant:"X" i);
    ignore (Admission.submit b ~tenant:"Y" i)
  done;
  (* one pick: Y accrues +1 credit while X (winner) pays the total *)
  (match Admission.take b with
  | Some ("X", _) -> ()
  | _ -> Alcotest.fail "X must win the first pick at weight 5");
  Admission.set_weight b ~tenant:"X" 1;
  let rec drain acc =
    match
      if Admission.depth b ~tenant:"X" + Admission.depth b ~tenant:"Y" = 0 then
        None
      else Admission.take b
    with
    | Some (tenant, _) -> drain (tenant :: acc)
    | None -> List.rev acc
  in
  let rest = drain [] in
  let count t = List.length (List.filter (( = ) t) rest) in
  (* equal weights from here: service must stay balanced, never letting
     X spend pre-downgrade credit to burst ahead *)
  check ci "X served exactly its remainder" 3 (count "X");
  check ci "Y served exactly its remainder" 4 (count "Y");
  (* X (downgraded, 3 left) must never be served twice in a row *)
  let rec no_double = function
    | "X" :: "X" :: _ -> false
    | _ :: rest -> no_double rest
    | [] -> true
  in
  check cb "no X double-service after downgrade" true (no_double rest)

(* ---------------- rate limit / quota end-to-end ---------------- *)

let submit_req ?(tenant = "t") ?(runs = 5) job =
  Proto.Submit { tenant; job; runs; seed = 1; deadline = 0.0; source = fig1 }

let server_rate_limit_net004 () =
  let config =
    { quick_config with
      Server.quota =
        { Quota.rate = 0.5; burst = 1; max_bytes = 0; max_jobs = 0 } }
  in
  with_server ~config @@ fun _root t ->
  (match rpc t (submit_req "j1") with
  | Proto.Accepted _ -> ()
  | r -> Alcotest.failf "first submit must pass: %s" (Proto.encode_response r));
  (match rpc t (submit_req "j2") with
  | Proto.Rejected { retry_after; reason } ->
      check cb "NET004 rate reason" true (contains reason "NET004");
      check cb "rate named" true (contains reason "rate limit");
      check cb "retry-after from refill" true
        (retry_after > 0.0 && retry_after <= 2.0 +. 1e-6)
  | r -> Alcotest.failf "second submit must be rate-limited: %s"
           (Proto.encode_response r));
  (* an idempotent resubmit of the accepted job needs no token *)
  match rpc t (submit_req "j1") with
  | Proto.Accepted _ -> ()
  | _ -> Alcotest.fail "idempotent resubmit must not need a token"

let server_quota_then_gc () =
  let config =
    { quick_config with
      Server.quota = { Quota.rate = 0.0; burst = 0; max_bytes = 0; max_jobs = 1 };
      retain_done = 0.0; gc_interval = 0.0 (* tests drive gc_now *) }
  in
  with_server ~config @@ fun root t ->
  (match rpc t (submit_req "j1") with
  | Proto.Accepted _ -> ()
  | _ -> Alcotest.fail "first job must be admitted");
  (* the live job holds the only quota slot *)
  (match rpc t (submit_req "j2") with
  | Proto.Rejected { reason; _ } ->
      check cb "NET004 job quota" true (contains reason "NET004");
      check cb "job quota named" true (contains reason "job quota")
  | _ -> Alcotest.fail "second job must exceed the job quota");
  ignore (poll_state t ~tenant:"t" ~job:"j1" (fun s -> s = "done"));
  Thread.delay 0.02;
  (* retention 0: the finished job is collectable; GC frees its slot *)
  check ci "gc collects the finished job" 1 (Server.gc_now t);
  (match rpc t (Proto.Status { tenant = "t"; job = "j1" }) with
  | Proto.Job_status { state; _ } -> check cs "collected = unknown" "unknown" state
  | _ -> Alcotest.fail "expected Job_status");
  (* the collected job's directory is gone from the store *)
  let job_dirs =
    Sys.readdir (Filename.concat root "jobs")
    |> Array.to_list
    |> List.concat_map (fun shard ->
           let d = Filename.concat (Filename.concat root "jobs") shard in
           if Sys.is_directory d then Array.to_list (Sys.readdir d) else [])
  in
  check cb "job dir deleted" false (List.mem "t__j1" job_dirs);
  (match rpc t (submit_req "j2") with
  | Proto.Accepted _ -> ()
  | r ->
      Alcotest.failf "slot must be free after GC: %s" (Proto.encode_response r));
  ignore (poll_state t ~tenant:"t" ~job:"j2" (fun s -> s = "done"));
  (* a resubmit of the collected job is a FRESH job and runs again *)
  Server.gc_now t |> ignore;
  (match rpc t (submit_req "j1") with
  | Proto.Accepted _ -> ()
  | _ -> Alcotest.fail "collected job must be resubmittable");
  ignore (poll_state t ~tenant:"t" ~job:"j1" (fun s -> s = "done"));
  match rpc t Proto.Metrics with
  | Proto.Metrics_text text ->
      check cb "gc collections counted" true (contains text "s89_gc_collected")
  | _ -> Alcotest.fail "expected Metrics_text"

let server_gc_size_bound () =
  let config =
    { quick_config with Server.max_store_bytes = 1; gc_interval = 0.0 }
  in
  with_server ~config @@ fun _root t ->
  (match rpc t (submit_req "j1") with
  | Proto.Accepted _ -> ()
  | _ -> Alcotest.fail "submit must pass");
  ignore (poll_state t ~tenant:"t" ~job:"j1" (fun s -> s = "done"));
  Thread.delay 0.02;
  (* retention is forever, but the size bound forces eviction *)
  check ci "size bound evicts the finished job" 1 (Server.gc_now t);
  match rpc t (Proto.Status { tenant = "t"; job = "j1" }) with
  | Proto.Job_status { state; _ } -> check cs "evicted" "unknown" state
  | _ -> Alcotest.fail "expected Job_status"

let server_tomb_sweep_on_recovery () =
  with_tmp_dir @@ fun root ->
  let store_root = Filename.concat root "jobs" in
  let dir = Filename.concat (Filename.concat store_root "shard-07") "t__dead" in
  let write p s =
    let oc = open_out_bin p in
    output_string oc s;
    close_out oc
  in
  let rec mkdir_p d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      Unix.mkdir d 0o755
    end
  in
  mkdir_p dir;
  write (Filename.concat dir "source.mf") fig1;
  write (Filename.concat dir "job.meta") "tenant t\njob dead\nruns 5\nseed 1\n";
  write (Filename.concat dir "job.tomb") "tomb\n";
  let t = Server.start ~config:quick_config ~store_root () in
  Fun.protect ~finally:(fun () -> Server.stop t) @@ fun () ->
  check cb "tombed dir swept, not resurrected" false (Sys.file_exists dir);
  match rpc t (Proto.Status { tenant = "t"; job = "dead" }) with
  | Proto.Job_status { state; _ } -> check cs "tombed = unknown" "unknown" state
  | _ -> Alcotest.fail "expected Job_status"

(* ---------------- disk pressure (SRV007) ---------------- *)

let server_disk_pressure () =
  let config =
    { quick_config with Server.disk_probe_interval = 0.02; gc_interval = 0.05 }
  in
  with_server ~config @@ fun _root t ->
  Fun.protect ~finally:(fun () -> Fault.set None) @@ fun () ->
  (* a job admitted on a healthy disk... *)
  (match rpc t (submit_req ~runs:20_000 "inflight") with
  | Proto.Accepted _ -> ()
  | _ -> Alcotest.fail "submit must pass on a healthy disk");
  ignore (poll_state t ~tenant:"t" ~job:"inflight" (fun s -> s = "running"));
  (* ...then every durable write starts failing with ENOSPC *)
  (match Fault.parse "enospc:1.0,seed:3" with
  | Ok sp -> Fault.set (Some sp)
  | Error m -> Alcotest.fail m);
  (* new admissions are shed with SRV007 *)
  (match rpc t (submit_req "shed") with
  | Proto.Rejected { retry_after; reason } ->
      check cb "SRV007 named" true (contains reason "SRV007");
      check cb "positive retry-after" true (retry_after > 0.0)
  | r -> Alcotest.failf "submit under disk pressure must shed: %s"
           (Proto.encode_response r));
  (* the in-flight job still finishes — from memory *)
  ignore (poll_state t ~tenant:"t" ~job:"inflight" (fun s -> s = "done"));
  (match rpc t (Proto.Result { tenant = "t"; job = "inflight" }) with
  | Proto.Job_result { state; body } ->
      check cs "done under pressure" "done" state;
      check cb "report served from memory" true
        (String.length body > 16 && String.sub body 0 16 = "program estimate")
  | _ -> Alcotest.fail "expected Job_result");
  (* disk recovers: a probe clears the breaker and admissions resume *)
  Fault.set None;
  let rec resubmit n =
    if n = 0 then Alcotest.fail "admissions must resume after recovery"
    else
      match rpc t (submit_req "after") with
      | Proto.Accepted _ -> ()
      | Proto.Rejected _ ->
          Thread.delay 0.03;
          resubmit (n - 1)
      | _ -> Alcotest.fail "unexpected response"
  in
  resubmit 200;
  ignore (poll_state t ~tenant:"t" ~job:"after" (fun s -> s = "done"));
  match rpc t Proto.Metrics with
  | Proto.Metrics_text text ->
      check cb "pressure cleared" true (contains text "s89_disk_pressure 0");
      check cb "exactly one pressure window" true
        (contains text "s89_disk_pressure_windows 1")
  | _ -> Alcotest.fail "expected Metrics_text"

(* ---------------- slowloris frame deadline ---------------- *)

let proto_read_deadline () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* drip a partial header, then stall forever *)
  ignore (Unix.write_substring b "s89 10" 0 6 : int);
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. 0.2 in
  (match Proto.read_frame ~deadline a with
  | exception Proto.Timed_out -> ()
  | Ok _ | Error _ -> Alcotest.fail "a stalled frame must time out");
  let elapsed = Unix.gettimeofday () -. t0 in
  check cb "cut off near the deadline" true (elapsed >= 0.15 && elapsed < 2.0);
  (* a whole frame arriving in time is unaffected by the deadline *)
  let payload = Proto.encode_request Proto.Metrics in
  ignore
    (Unix.write_substring b (Proto.frame payload) 0
       (String.length (Proto.frame payload))
      : int);
  match Proto.read_frame ~deadline:(Unix.gettimeofday () +. 5.0) a with
  | Ok p -> check cs "frame delivered" payload p
  | Error e -> Alcotest.failf "frame rejected: %s" e

(* ---------------- client backoff schedule ---------------- *)

let client_retry_delay_golden () =
  let cf = Alcotest.float 1e-9 in
  let d ~attempt ~retry_after ~jitter =
    Server.Client.retry_delay ~attempt ~retry_after ~jitter
  in
  check cf "attempt 0 base" 0.1 (d ~attempt:0 ~retry_after:0.0 ~jitter:0.0);
  check cf "exponential growth" 0.8 (d ~attempt:3 ~retry_after:0.0 ~jitter:0.0);
  check cf "capped at 5s" 5.0 (d ~attempt:10 ~retry_after:0.0 ~jitter:0.0);
  check cf "server floor wins" 2.0 (d ~attempt:0 ~retry_after:2.0 ~jitter:0.0);
  check cf "jitter spreads up to +25%" 0.125
    (d ~attempt:0 ~retry_after:0.0 ~jitter:1.0);
  (* the schedule is pure: same inputs, same delay *)
  check cf "deterministic"
    (d ~attempt:5 ~retry_after:1.3 ~jitter:0.5)
    (d ~attempt:5 ~retry_after:1.3 ~jitter:0.5)

let suite =
  [
    Alcotest.test_case "proto: codecs roundtrip" `Quick proto_roundtrip;
    Alcotest.test_case "proto: garbage rejected (NET002)" `Quick proto_rejects_garbage;
    Alcotest.test_case "admission: bounded per tenant" `Quick admission_bounds;
    Alcotest.test_case "admission: SWRR golden order" `Quick admission_swrr_golden;
    Alcotest.test_case "histogram: bucketed quantiles" `Quick histogram_quantiles;
    Alcotest.test_case "server: submit/status/result = direct batch" `Quick
      server_end_to_end;
    Alcotest.test_case "server: overflow shed with NET001" `Quick
      server_overload_rejects;
    Alcotest.test_case "server: deadline expiry keeps partial (SRV004)" `Quick
      server_deadline_expires;
    Alcotest.test_case "server: restart resumes byte-identically" `Quick
      server_restart_resumes;
    QCheck_alcotest.to_alcotest quota_window_prop;
    Alcotest.test_case "quota: byte/job ledgers" `Quick quota_ledgers;
    Alcotest.test_case "admission: mid-stream reweight golden" `Quick
      admission_set_weight_golden;
    Alcotest.test_case "server: rate limit shed with NET004" `Quick
      server_rate_limit_net004;
    Alcotest.test_case "server: job quota frees after GC" `Quick
      server_quota_then_gc;
    Alcotest.test_case "server: GC size bound evicts" `Quick server_gc_size_bound;
    Alcotest.test_case "server: tombstone swept on recovery" `Quick
      server_tomb_sweep_on_recovery;
    Alcotest.test_case "server: disk pressure sheds + recovers (SRV007)" `Quick
      server_disk_pressure;
    Alcotest.test_case "proto: frame deadline cuts slowloris" `Quick
      proto_read_deadline;
    Alcotest.test_case "client: retry backoff schedule" `Quick
      client_retry_delay_golden;
  ]
