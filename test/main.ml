(* Aggregated test suites for the whole reproduction.  Run via `dune
   runtest`; property tests (qcheck) are registered as alcotest cases. *)
let () =
  Alcotest.run "sarkar89"
    [
      ("util", Test_util.suite);
      ("exec", Test_exec.suite);
      ("graph", Test_graph.suite);
      ("cfg", Test_cfg.suite);
      ("cdg", Test_cdg.suite);
      ("frontend", Test_frontend.suite);
      ("vm", Test_vm.suite);
      ("profiling", Test_profiling.suite);
      ("core", Test_core.suite);
      ("sched", Test_sched.suite);
      ("robustness", Test_robustness.suite);
      ("store", Test_store.suite);
      ("net", Test_net.suite);
      ("memo", Test_memo.suite);
      ("workloads", Test_workloads.suite);
    ]
