(* Tests for s89_util: Vec, Prng, Stats. *)

open S89_util

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cf = Alcotest.float 1e-9

(* ---------------- Vec ---------------- *)

let vec_basics () =
  let v = S89_graph.Vec.create ~dummy:0 in
  check ci "empty length" 0 (S89_graph.Vec.length v);
  check cb "is_empty" true (S89_graph.Vec.is_empty v);
  for i = 1 to 100 do
    S89_graph.Vec.push v i
  done;
  check ci "length after pushes" 100 (S89_graph.Vec.length v);
  check ci "get 0" 1 (S89_graph.Vec.get v 0);
  check ci "get 99" 100 (S89_graph.Vec.get v 99);
  S89_graph.Vec.set v 5 42;
  check ci "set/get" 42 (S89_graph.Vec.get v 5);
  check ci "top" 100 (S89_graph.Vec.top v);
  check ci "pop" 100 (S89_graph.Vec.pop v);
  check ci "length after pop" 99 (S89_graph.Vec.length v)

let vec_bounds () =
  let v = S89_graph.Vec.of_list [ 1; 2; 3 ] ~dummy:0 in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (S89_graph.Vec.get v 3));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set: index out of bounds")
    (fun () -> S89_graph.Vec.set v (-1) 0);
  let e = S89_graph.Vec.create ~dummy:0 in
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (S89_graph.Vec.pop e))

let vec_conversions () =
  let v = S89_graph.Vec.of_list [ 3; 1; 4; 1; 5 ] ~dummy:0 in
  check (Alcotest.list ci) "to_list" [ 3; 1; 4; 1; 5 ] (S89_graph.Vec.to_list v);
  check (Alcotest.array ci) "to_array" [| 3; 1; 4; 1; 5 |] (S89_graph.Vec.to_array v);
  let doubled = S89_graph.Vec.map (fun x -> 2 * x) v ~dummy:0 in
  check (Alcotest.list ci) "map" [ 6; 2; 8; 2; 10 ] (S89_graph.Vec.to_list doubled);
  let odd = S89_graph.Vec.filter (fun x -> x mod 2 = 1) v in
  check (Alcotest.list ci) "filter" [ 3; 1; 1; 5 ] (S89_graph.Vec.to_list odd);
  check ci "fold" 14 (S89_graph.Vec.fold_left ( + ) 0 v);
  check cb "exists" true (S89_graph.Vec.exists (fun x -> x = 4) v);
  check cb "not exists" false (S89_graph.Vec.exists (fun x -> x = 9) v)

let vec_clear_make () =
  let v = S89_graph.Vec.make 5 7 ~dummy:0 in
  check ci "make length" 5 (S89_graph.Vec.length v);
  check ci "make value" 7 (S89_graph.Vec.get v 4);
  S89_graph.Vec.clear v;
  check ci "cleared" 0 (S89_graph.Vec.length v)

(* ---------------- Prng ---------------- *)

let prng_determinism () =
  let a = Prng.create ~seed:123 and b = Prng.create ~seed:123 in
  for _ = 1 to 50 do
    check ci "same sequence" (Prng.int a 1000) (Prng.int b 1000)
  done;
  let c = Prng.create ~seed:124 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Prng.int a 1000 <> Prng.int c 1000 then differs := true
  done;
  check cb "different seeds differ" true !differs

let prng_ranges () =
  let r = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let i = Prng.int r 13 in
    if i < 0 || i >= 13 then Alcotest.fail "int out of range";
    let f = Prng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of range";
    let u = Prng.uniform r ~lo:2.0 ~hi:5.0 in
    if u < 2.0 || u >= 5.0 then Alcotest.fail "uniform out of range";
    let g = Prng.geometric r ~p:0.4 in
    if g < 1 then Alcotest.fail "geometric < 1";
    let e = Prng.exponential r ~mean:3.0 in
    if e < 0.0 then Alcotest.fail "exponential < 0"
  done

let prng_moments () =
  let r = Prng.create ~seed:99 in
  let n = 20000 in
  let st = Stats.create () in
  for _ = 1 to n do
    Stats.add st (Prng.normal r)
  done;
  check (Alcotest.float 0.05) "normal mean ~ 0" 0.0 (Stats.mean st);
  check (Alcotest.float 0.05) "normal var ~ 1" 1.0 (Stats.variance st);
  let st = Stats.create () in
  for _ = 1 to n do
    Stats.add st (Prng.exponential r ~mean:2.5)
  done;
  check (Alcotest.float 0.1) "exp mean" 2.5 (Stats.mean st);
  let st = Stats.create () in
  for _ = 1 to n do
    Stats.add st (float_of_int (Prng.geometric r ~p:0.25))
  done;
  check (Alcotest.float 0.15) "geometric mean = 1/p" 4.0 (Stats.mean st)

let prng_split () =
  let draws rng k = List.init k (fun _ -> Prng.int rng 1_000_000) in
  (* child streams are pairwise distinct *)
  let r = Prng.create ~seed:5 in
  let children = List.init 8 (fun i -> draws (Prng.split r i) 20) in
  List.iteri
    (fun i si ->
      List.iteri
        (fun j sj -> if i < j && si = sj then Alcotest.fail "child streams collide")
        children;
      (* ... and distinct from the parent's own stream *)
      if si = draws (Prng.copy r) 20 then Alcotest.fail "child equals parent stream";
      ignore i; ignore si)
    children;
  (* reproducible: same (parent state, index) -> same stream *)
  let a = Prng.create ~seed:5 and b = Prng.create ~seed:5 in
  check (Alcotest.list ci) "split reproducible" (draws (Prng.split a 3) 20)
    (draws (Prng.split b 3) 20);
  (* splitting does not advance the parent, in any order *)
  let p1 = Prng.create ~seed:9 and p2 = Prng.create ~seed:9 in
  ignore (Prng.split p1 4);
  ignore (Prng.split p1 0);
  check (Alcotest.list ci) "parent unaffected by splits" (draws p1 10) (draws p2 10);
  (* negative index rejected *)
  Alcotest.check_raises "negative index" (Invalid_argument "Prng.split: negative index")
    (fun () -> ignore (Prng.split (Prng.create ~seed:1) (-1)))

(* ---------------- Stats ---------------- *)

let stats_known () =
  let st = Stats.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  check cf "mean" 5.0 (Stats.mean st);
  check cf "population variance" 4.0 (Stats.variance st);
  check cf "std dev" 2.0 (Stats.std_dev st);
  check cf "min" 2.0 (Stats.min st);
  check cf "max" 9.0 (Stats.max st);
  check ci "count" 8 (Stats.count st)

let stats_sample_variance () =
  let st = Stats.of_list [ 1.0; 2.0; 3.0 ] in
  check cf "population" (2.0 /. 3.0) (Stats.variance st);
  check cf "sample" 1.0 (Stats.variance_sample st)

let stats_rel_err () =
  check cf "rel_err basic" 0.1 (Stats.rel_err 110.0 100.0);
  check cf "rel_err zero ref" (1.0 /. 1e-12) (Stats.rel_err 1.0 0.0)

(* Welford matches the naive two-pass computation *)
let stats_welford_prop =
  QCheck.Test.make ~count:200 ~name:"welford = two-pass"
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let st = Stats.of_list xs in
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. n
      in
      Float.abs (Stats.mean st -. mean) < 1e-6 *. (1.0 +. Float.abs mean)
      && Float.abs (Stats.variance st -. var) < 1e-6 *. (1.0 +. var))

let stats_nonneg_prop =
  QCheck.Test.make ~count:200 ~name:"variance >= 0"
    QCheck.(list_of_size (Gen.int_range 1 30) (float_range (-1000.) 1000.))
    (fun xs ->
      let st = Stats.of_list xs in
      Stats.variance st >= -1e-9)

let suite =
  [
    Alcotest.test_case "vec basics" `Quick vec_basics;
    Alcotest.test_case "vec bounds" `Quick vec_bounds;
    Alcotest.test_case "vec conversions" `Quick vec_conversions;
    Alcotest.test_case "vec clear/make" `Quick vec_clear_make;
    Alcotest.test_case "prng determinism" `Quick prng_determinism;
    Alcotest.test_case "prng ranges" `Quick prng_ranges;
    Alcotest.test_case "prng moments" `Slow prng_moments;
    Alcotest.test_case "prng split" `Quick prng_split;
    Alcotest.test_case "stats known values" `Quick stats_known;
    Alcotest.test_case "stats sample variance" `Quick stats_sample_variance;
    Alcotest.test_case "stats rel_err" `Quick stats_rel_err;
    QCheck_alcotest.to_alcotest stats_welford_prop;
    QCheck_alcotest.to_alcotest stats_nonneg_prop;
  ]
