(* Tests for s89_vm: Value semantics, Builtins, the interpreter (results,
   calling conventions, oracle counts, cycle accounting, sampling, fuel),
   the cost model and the optimizer. *)

module Ast = S89_frontend.Ast
module Ir = S89_frontend.Ir
module Program = S89_frontend.Program
module Interp = S89_vm.Interp
module Value = S89_vm.Value
module CM = S89_vm.Cost_model
module Cfg = S89_cfg.Cfg

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cf = Alcotest.float 1e-9

(* ---------------- Value ---------------- *)

let value_arith () =
  check cb "int add" true (Value.add (Value.Int 2) (Value.Int 3) = Value.Int 5);
  check cb "mixed promotes" true
    (Value.add (Value.Int 2) (Value.Real 0.5) = Value.Real 2.5);
  (* Fortran integer division truncates toward zero *)
  check cb "int div" true (Value.div (Value.Int 7) (Value.Int 2) = Value.Int 3);
  check cb "neg int div" true (Value.div (Value.Int (-7)) (Value.Int 2) = Value.Int (-3));
  check cb "int pow" true (Value.pow (Value.Int 2) (Value.Int 10) = Value.Int 1024);
  check cb "pow zero" true (Value.pow (Value.Int 5) (Value.Int 0) = Value.Int 1);
  check cb "real pow int" true (Value.pow (Value.Real 2.0) (Value.Int (-1)) = Value.Real 0.5);
  check cb "neg" true (Value.neg (Value.Int 3) = Value.Int (-3));
  check cb "rel" true (Value.rel Ast.Lt (Value.Int 1) (Value.Real 1.5) = Value.Bool true);
  check cb "logic" true
    (Value.logic Ast.And (Value.Bool true) (Value.Bool false) = Value.Bool false)

let value_errors () =
  let expect_err f =
    match f () with
    | exception Value.Runtime_error _ -> ()
    | _ -> Alcotest.fail "expected runtime error"
  in
  expect_err (fun () -> Value.div (Value.Int 1) (Value.Int 0));
  expect_err (fun () -> Value.div (Value.Real 1.0) (Value.Real 0.0));
  expect_err (fun () -> Value.add (Value.Bool true) (Value.Int 1));
  expect_err (fun () -> Value.pow (Value.Int 2) (Value.Int (-1)));
  expect_err (fun () -> Value.coerce Ast.Tlogical (Value.Int 1));
  expect_err (fun () -> ignore (Value.to_bool (Value.Int 1)))

let value_coerce () =
  check cb "int->real" true (Value.coerce Ast.Treal (Value.Int 3) = Value.Real 3.0);
  check cb "real->int truncates" true (Value.coerce Ast.Tint (Value.Real 3.9) = Value.Int 3);
  check cb "identity" true (Value.coerce Ast.Tint (Value.Int 3) = Value.Int 3)

(* ---------------- Builtins ---------------- *)

let builtins () =
  let rng = S89_util.Prng.create ~seed:1 in
  let app name vs = S89_vm.Builtins.apply rng name vs in
  check cb "ABS int" true (app "ABS" [ Value.Int (-3) ] = Value.Int 3);
  check cb "ABS real" true (app "ABS" [ Value.Real (-1.5) ] = Value.Real 1.5);
  check cb "SQRT" true (app "SQRT" [ Value.Real 9.0 ] = Value.Real 3.0);
  (* Fortran MOD keeps the dividend's sign (truncated division) *)
  check cb "MOD" true (app "MOD" [ Value.Int 7; Value.Int 3 ] = Value.Int 1);
  check cb "MOD negative" true (app "MOD" [ Value.Int (-7); Value.Int 3 ] = Value.Int (-1));
  check cb "MIN variadic" true
    (app "MIN" [ Value.Int 3; Value.Int 1; Value.Int 2 ] = Value.Int 1);
  check cb "MAX mixed" true
    (app "MAX" [ Value.Int 3; Value.Real 3.5 ] = Value.Real 3.5);
  check cb "MIN0" true (app "MIN0" [ Value.Int 4; Value.Int 9 ] = Value.Int 4);
  check cb "INT truncates" true (app "INT" [ Value.Real 2.9 ] = Value.Int 2);
  check cb "FLOAT" true (app "FLOAT" [ Value.Int 2 ] = Value.Real 2.0);
  check cb "SIGN" true (app "SIGN" [ Value.Int (-5); Value.Int 1 ] = Value.Int 5);
  check cb "SIGN negative" true (app "SIGN" [ Value.Int 5; Value.Int (-1) ] = Value.Int (-5));
  (* IRAND in [1, n] *)
  for _ = 1 to 200 do
    match app "IRAND" [ Value.Int 6 ] with
    | Value.Int i when i >= 1 && i <= 6 -> ()
    | _ -> Alcotest.fail "IRAND out of range"
  done;
  (match app "RAND" [] with
  | Value.Real r when r >= 0.0 && r < 1.0 -> ()
  | _ -> Alcotest.fail "RAND out of range");
  match app "SQRT" [ Value.Real (-1.0) ] with
  | exception Value.Runtime_error _ -> ()
  | _ -> Alcotest.fail "SQRT(-1) should fail"

(* ---------------- Interp: computation results ---------------- *)

let run_and_output ?(seed = 42) src =
  let prog = Program.of_source src in
  let config = { Interp.default_config with seed } in
  let vm = Interp.create ~config prog in
  ignore (Interp.run vm);
  (vm, String.trim (Interp.output vm))

let interp_factorial () =
  let _, out =
    run_and_output
      "      PROGRAM T\n      NFACT = 1\n      DO 10 I = 1, 6\n      NFACT = NFACT * I\n10    CONTINUE\n      PRINT *, NFACT\n      END\n"
  in
  check Alcotest.string "6! = 720" "720" out

let interp_function_call () =
  let _, out =
    run_and_output
      "      PROGRAM T\n      PRINT *, IFIB(10)\n      END\n\n      INTEGER FUNCTION IFIB(N)\n      INTEGER A, B, T, I\n      A = 0\n      B = 1\n      DO 10 I = 1, N\n      T = A + B\n      A = B\n      B = T\n10    CONTINUE\n      IFIB = A\n      END\n"
  in
  check Alcotest.string "fib 10 = 55" "55" out

let interp_by_reference () =
  let _, out =
    run_and_output
      "      PROGRAM T\n      INTEGER A, B\n      A = 1\n      B = 2\n      CALL SWAP(A, B)\n      PRINT *, A, B\n      END\n\n      SUBROUTINE SWAP(X, Y)\n      INTEGER X, Y, T\n      T = X\n      X = Y\n      Y = T\n      END\n"
  in
  check Alcotest.string "swapped" "2 1" out

let interp_array_element_ref () =
  let _, out =
    run_and_output
      "      PROGRAM T\n      REAL A(3)\n      A(2) = 5.0\n      CALL BUMP(A(2))\n      PRINT *, A(2)\n      END\n\n      SUBROUTINE BUMP(X)\n      X = X + 1.0\n      END\n"
  in
  check Alcotest.string "array element by ref" "6" out

let interp_aliasing () =
  (* CALL FOO(M, M): both parameters alias the same cell *)
  let _, out =
    run_and_output
      "      PROGRAM T\n      INTEGER M\n      M = 3\n      CALL FOO(M, M)\n      PRINT *, M\n      END\n\n      SUBROUTINE FOO(A, B)\n      INTEGER A, B\n      A = A + 1\n      B = B + 10\n      END\n"
  in
  check Alcotest.string "aliased" "14" out

let interp_copy_in () =
  (* expression arguments are copy-in: writes are lost *)
  let _, out =
    run_and_output
      "      PROGRAM T\n      INTEGER M\n      M = 3\n      CALL FOO(M + 0)\n      PRINT *, M\n      END\n\n      SUBROUTINE FOO(A)\n      INTEGER A\n      A = 99\n      END\n"
  in
  check Alcotest.string "copy-in" "3" out

let interp_2d_arrays () =
  let _, out =
    run_and_output
      "      PROGRAM T\n      REAL A(3, 4)\n      DO 10 I = 1, 3\n      DO 10 J = 1, 4\n      A(I, J) = REAL(I * 10 + J)\n10    CONTINUE\n      PRINT *, A(2, 3)\n      END\n"
  in
  check Alcotest.string "2d indexing" "23" out

let interp_zero_trip () =
  let _, out =
    run_and_output
      "      PROGRAM T\n      K = 0\n      DO 10 I = 5, 1\n      K = K + 1\n10    CONTINUE\n      PRINT *, K\n      END\n"
  in
  check Alcotest.string "zero-trip DO" "0" out

let interp_negative_step () =
  let _, out =
    run_and_output
      "      PROGRAM T\n      K = 0\n      DO 10 I = 10, 1, -2\n      K = K + I\n10    CONTINUE\n      PRINT *, K\n      END\n"
  in
  check Alcotest.string "10+8+6+4+2" "30" out

let interp_computed_goto () =
  let _, out =
    run_and_output
      "      PROGRAM T\n      DO 50 K = 1, 4\n      GOTO (10, 20, 30), K\n      PRINT *, 99\n      GOTO 50\n10    PRINT *, 1\n      GOTO 50\n20    PRINT *, 2\n      GOTO 50\n30    PRINT *, 3\n50    CONTINUE\n      END\n"
  in
  check Alcotest.string "dispatch" "1\n2\n3\n99"
    (String.concat "\n" (List.map String.trim (String.split_on_char '\n' out)))

let interp_stop_unwinds () =
  let vm, out =
    run_and_output
      "      PROGRAM T\n      CALL DEEP\n      PRINT *, 2\n      END\n\n      SUBROUTINE DEEP\n      PRINT *, 1\n      STOP\n      END\n"
  in
  ignore vm;
  check Alcotest.string "stopped before 2" "1" out

let interp_out_of_fuel () =
  let prog =
    Program.of_source
      "      PROGRAM T\n10    X = X + 1.0\n      IF (X .GT. -1.0) GOTO 10\n      END\n"
  in
  let config = { Interp.default_config with max_steps = 1000 } in
  let vm = Interp.create ~config prog in
  match Interp.run vm with
  | exception Interp.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected Out_of_fuel"

(* ---------------- Interp: oracle counts & cycles ---------------- *)

let interp_oracle_counts () =
  let prog = Program.of_source (S89_workloads.Demos.fig1 ()) in
  let vm = Interp.create prog in
  ignore (Interp.run vm);
  (* M=3: header IF executes 3 times; FOO called twice; exit via (4,T) *)
  check ci "invocations main" 1 (Interp.invocations vm "FIG1");
  check ci "invocations foo" 2 (Interp.invocations vm "FOO");
  check ci "header execs" 3 (Interp.node_execs vm "FIG1" 3);
  check ci "call execs" 2 (Interp.node_execs vm "FIG1" 6);
  check ci "edge (3,T)" 3 (Interp.edge_count vm "FIG1" 3 S89_cfg.Label.T);
  check ci "edge (3,F)" 0 (Interp.edge_count vm "FIG1" 3 S89_cfg.Label.F);
  check ci "edge (4,T) exit" 1 (Interp.edge_count vm "FIG1" 4 S89_cfg.Label.T);
  check ci "edge (4,F)" 2 (Interp.edge_count vm "FIG1" 4 S89_cfg.Label.F)

let interp_cycles_by_hand () =
  (* straight-line program: cycles = sum of node costs, both models *)
  let src = "      PROGRAM T\n      X = 1.0\n      Y = X + 2.0\n      END\n" in
  List.iter
    (fun cm ->
      let prog = Program.of_source src in
      let config = { Interp.default_config with cost_model = cm } in
      let vm = Interp.create ~config prog in
      ignore (Interp.run vm);
      let p = Program.find prog "T" in
      let expected = ref 0 in
      Cfg.iter_nodes
        (fun n -> expected := !expected + CM.node_cost cm (Cfg.info p.Program.cfg n).Ir.ir)
        p.Program.cfg;
      check ci ("cycles = sum of costs, " ^ cm.CM.name) !expected (Interp.cycles vm))
    [ CM.optimized; CM.unoptimized ]

let interp_determinism () =
  let cycles seed =
    let prog = Program.of_source (S89_workloads.Demos.branchy ()) in
    let config = { Interp.default_config with seed } in
    let vm = Interp.create ~config prog in
    ignore (Interp.run vm);
    Interp.cycles vm
  in
  check ci "same seed same cycles" (cycles 7) (cycles 7);
  check cb "different seeds differ" true (cycles 7 <> cycles 8)

let interp_sampling () =
  let prog = Program.of_source (S89_workloads.Demos.branchy ()) in
  let interval = 50 in
  let config = { Interp.default_config with sample_interval = Some interval } in
  let vm = Interp.create ~config prog in
  ignore (Interp.run vm);
  let total = ref 0 in
  List.iter
    (fun (p : Program.proc) ->
      Cfg.iter_nodes
        (fun n -> total := !total + Interp.node_samples vm p.Program.name n)
        p.Program.cfg)
    (Program.procs prog);
  let expected = Interp.cycles vm / interval in
  check cb "sample count ~ cycles/interval" true (abs (!total - expected) <= 1)

(* probes: instrumented counters count what they should *)
let interp_probes () =
  let prog = Program.of_source (S89_workloads.Demos.fig1 ()) in
  let probes = S89_vm.Probe.make ~n_counters:3 in
  let num_nodes = Cfg.num_nodes (Program.find prog "FIG1").Program.cfg in
  S89_vm.Probe.add_node_action probes ~proc:"FIG1" ~num_nodes ~node:3
    (S89_vm.Probe.Incr 0);
  S89_vm.Probe.add_edge_action probes ~proc:"FIG1" ~num_nodes ~node:3
    ~label:S89_cfg.Label.T (S89_vm.Probe.Incr 1);
  S89_vm.Probe.add_edge_action probes ~proc:"FIG1" ~num_nodes ~node:0
    ~label:S89_cfg.Label.U
    (S89_vm.Probe.Bulk_add (2, Ast.Int 7));
  let config = { Interp.default_config with instr = probes } in
  let vm = Interp.create ~config prog in
  ignore (Interp.run vm);
  let c = Interp.counters vm in
  check ci "node probe" 3 c.(0);
  check ci "edge probe" 3 c.(1);
  check ci "bulk probe" 7 c.(2);
  (* instrumented run costs more *)
  let vm0 = Interp.create prog in
  ignore (Interp.run vm0);
  check cb "probe cost charged" true (Interp.cycles vm > Interp.cycles vm0)

(* ---------------- Optimizer ---------------- *)

let optimize_folds () =
  (* RAND() is impure, so these cannot be propagated away entirely *)
  let prog =
    Program.of_source
      "      PROGRAM T\n      X = 2.0 * 3.0 + RAND()\n      Z = X ** 2\n      PRINT *, Z\n      END\n"
  in
  let opt = S89_vm.Optimize.program prog in
  let p = Program.find opt "T" in
  let found_fold = ref false and found_sq = ref false in
  Cfg.iter_nodes
    (fun n ->
      match (Cfg.info p.Program.cfg n).Ir.ir with
      | Ir.Assign (Ast.Lvar "X", Ast.Binop (Ast.Add, Ast.Real 6.0, Ast.Call ("RAND", [])))
        ->
          found_fold := true
      | Ir.Assign (Ast.Lvar "Z", Ast.Binop (Ast.Mul, Ast.Var "X", Ast.Var "X")) ->
          found_sq := true
      | _ -> ())
    p.Program.cfg;
  check cb "constant folded" true !found_fold;
  check cb "x**2 -> x*x" true !found_sq

let optimize_propagates () =
  let prog =
    Program.of_source
      "      PROGRAM T\n      K = 3\n      M = K + 4\n      PRINT *, M\n      END\n"
  in
  let opt = S89_vm.Optimize.program prog in
  let p = Program.find opt "T" in
  let found = ref false in
  Cfg.iter_nodes
    (fun n ->
      match (Cfg.info p.Program.cfg n).Ir.ir with
      (* K=3 and M=K+4 both propagate all the way into the PRINT *)
      | Ir.Print [ Ast.Int 7 ] -> found := true
      | _ -> ())
    p.Program.cfg;
  check cb "constant propagated through chain" true !found

let optimize_removes_dead () =
  let prog =
    Program.of_source
      "      PROGRAM T\n      X = 1.0\n      X = 2.0\n      UNUSED = 5.0\n      PRINT *, X\n      END\n"
  in
  let before = Cfg.num_nodes (Program.find prog "T").Program.cfg in
  let opt = S89_vm.Optimize.program prog in
  let after = Cfg.num_nodes (Program.find opt "T").Program.cfg in
  check cb "dead assign elided" true (after < before)

let optimize_reduces_cycles () =
  let prog = Program.of_source S89_workloads.Livermore.source in
  let opt = S89_vm.Optimize.program prog in
  let cycles prog =
    let vm = Interp.create prog in
    ignore (Interp.run vm);
    Interp.cycles vm
  in
  check cb "optimizer reduces simulated cycles" true (cycles opt < cycles prog)

(* semantics preservation: same output and same branch counts on demos *)
let optimize_preserves_semantics () =
  List.iter
    (fun src ->
      let prog = Program.of_source src in
      let opt = S89_vm.Optimize.program prog in
      let run prog =
        let config = { Interp.default_config with seed = 33 } in
        let vm = Interp.create ~config prog in
        ignore (Interp.run vm);
        vm
      in
      let vm0 = run prog and vm1 = run opt in
      check Alcotest.string "same output" (Interp.output vm0) (Interp.output vm1);
      (* procedure invocation counts unchanged *)
      List.iter
        (fun (p : Program.proc) ->
          check ci "same invocations" (Interp.invocations vm0 p.Program.name)
            (Interp.invocations vm1 p.Program.name))
        (Program.procs prog))
    [ S89_workloads.Demos.fig1 (); S89_workloads.Demos.branchy ();
      S89_workloads.Demos.chunky (); S89_workloads.Demos.computed_goto ();
      S89_workloads.Demos.nested_random () ]

let optimize_preserves_random_prop =
  QCheck.Test.make ~count:30 ~name:"optimizer preserves semantics (random programs)"
    QCheck.(int_range 0 100000)
    (fun seed ->
      let prog = Gen_prog.gen_program seed in
      let opt = S89_vm.Optimize.program prog in
      let run prog =
        let config = { Interp.default_config with seed = 5 } in
        let vm = Interp.create ~config prog in
        ignore (Interp.run vm);
        vm
      in
      let vm0 = run prog and vm1 = run opt in
      Interp.output vm0 = Interp.output vm1
      && Interp.invocations vm0 "HELPER" = Interp.invocations vm1 "HELPER"
      && Interp.cycles vm1 <= Interp.cycles vm0)

(* cost model: expr_cost of a known expression *)
let cost_model_expr () =
  let cm = CM.optimized in
  (* X + 1 : var + const + add *)
  let e = Ast.Binop (Ast.Add, Ast.Var "X", Ast.Int 1) in
  check ci "x+1" (cm.CM.c_var + cm.CM.c_const + cm.CM.c_add) (CM.expr_cost cm e);
  (* A(I): idx var + 1 dim + elem *)
  let e = Ast.Index ("A", [ Ast.Var "I" ]) in
  check ci "a(i)" (cm.CM.c_var + cm.CM.c_index + cm.CM.c_elem) (CM.expr_cost cm e);
  (* SQRT(X) expensive intrinsic *)
  let e = Ast.Call ("SQRT", [ Ast.Var "X" ]) in
  check ci "sqrt" (cm.CM.c_var + cm.CM.c_intrinsic_expensive) (CM.expr_cost cm e);
  (* user call: linkage + user_call hook *)
  let e = Ast.Call ("F", [ Ast.Var "X" ]) in
  check ci "user call"
    (cm.CM.c_var + cm.CM.c_call + 100)
    (CM.expr_cost ~user_call:(fun _ -> 100) cm e)

let suite =
  [
    Alcotest.test_case "value arithmetic" `Quick value_arith;
    Alcotest.test_case "value errors" `Quick value_errors;
    Alcotest.test_case "value coercion" `Quick value_coerce;
    Alcotest.test_case "builtins" `Quick builtins;
    Alcotest.test_case "interp: factorial" `Quick interp_factorial;
    Alcotest.test_case "interp: function call" `Quick interp_function_call;
    Alcotest.test_case "interp: by-reference args" `Quick interp_by_reference;
    Alcotest.test_case "interp: array element ref" `Quick interp_array_element_ref;
    Alcotest.test_case "interp: parameter aliasing" `Quick interp_aliasing;
    Alcotest.test_case "interp: copy-in expressions" `Quick interp_copy_in;
    Alcotest.test_case "interp: 2-d arrays" `Quick interp_2d_arrays;
    Alcotest.test_case "interp: zero-trip DO" `Quick interp_zero_trip;
    Alcotest.test_case "interp: negative step DO" `Quick interp_negative_step;
    Alcotest.test_case "interp: computed goto" `Quick interp_computed_goto;
    Alcotest.test_case "interp: STOP unwinds" `Quick interp_stop_unwinds;
    Alcotest.test_case "interp: out of fuel" `Quick interp_out_of_fuel;
    Alcotest.test_case "interp: oracle counts" `Quick interp_oracle_counts;
    Alcotest.test_case "interp: cycles by hand" `Quick interp_cycles_by_hand;
    Alcotest.test_case "interp: determinism" `Quick interp_determinism;
    Alcotest.test_case "interp: sampling" `Quick interp_sampling;
    Alcotest.test_case "interp: probes" `Quick interp_probes;
    Alcotest.test_case "optimize: folds" `Quick optimize_folds;
    Alcotest.test_case "optimize: propagates" `Quick optimize_propagates;
    Alcotest.test_case "optimize: dead assigns" `Quick optimize_removes_dead;
    Alcotest.test_case "optimize: reduces cycles" `Slow optimize_reduces_cycles;
    Alcotest.test_case "optimize: preserves semantics" `Quick optimize_preserves_semantics;
    QCheck_alcotest.to_alcotest optimize_preserves_random_prop;
    Alcotest.test_case "cost model expr" `Quick cost_model_expr;
  ]

(* ---------------- runtime errors and Fortran corner cases ---------------- *)

let expect_runtime_error src =
  let prog = Program.of_source src in
  let vm = Interp.create prog in
  match Interp.run vm with
  | exception Value.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected Runtime_error"

let interp_runtime_errors () =
  (* out-of-bounds subscript *)
  expect_runtime_error
    "      PROGRAM T\n      REAL A(3)\n      I = 4\n      A(I) = 1.0\n      END\n";
  (* zero subscript *)
  expect_runtime_error
    "      PROGRAM T\n      REAL A(3)\n      I = 0\n      X = A(I)\n      END\n";
  (* integer division by zero *)
  expect_runtime_error
    "      PROGRAM T\n      K = 0\n      M = 7 / K\n      END\n";
  (* SQRT of a negative *)
  expect_runtime_error
    "      PROGRAM T\n      X = SQRT(0.0 - 2.0)\n      END\n"

let interp_assumed_size_arrays () =
  (* the callee declares an assumed-size X and indexes the caller's storage *)
  let _, out =
    run_and_output
      "      PROGRAM T\n      REAL A(5)\n      DO 10 I = 1, 5\n      A(I) = REAL(I)\n10    CONTINUE\n      PRINT *, TOTAL(A, 5)\n      END\n\n      REAL FUNCTION TOTAL(X, N)\n      REAL X(*)\n      INTEGER N, I\n      TOTAL = 0.0\n      DO 20 I = 1, N\n      TOTAL = TOTAL + X(I)\n20    CONTINUE\n      END\n"
  in
  check Alcotest.string "sums via assumed size" "15" out;
  (* but the flat bound is still enforced *)
  expect_runtime_error
    "      PROGRAM T\n      REAL A(3)\n      CALL F(A)\n      END\n\n      SUBROUTINE F(X)\n      REAL X(*)\n      X(9) = 1.0\n      END\n"

let interp_param_coercion () =
  (* copy-in expression arguments coerce to the declared parameter type *)
  let _, out =
    run_and_output
      "      PROGRAM T\n      CALL F(2.9 + 0.0)\n      END\n\n      SUBROUTINE F(K)\n      INTEGER K\n      PRINT *, K\n      END\n"
  in
  check Alcotest.string "real expr into INTEGER param truncates" "2" out

let interp_whole_array_pass () =
  (* 2-D arrays pass by reference, callee mutates in place *)
  let _, out =
    run_and_output
      "      PROGRAM T\n      REAL M(2, 2)\n      M(1, 1) = 1.0\n      CALL SCALE(M)\n      PRINT *, M(1, 1)\n      END\n\n      SUBROUTINE SCALE(A)\n      REAL A(2, 2)\n      A(1, 1) = A(1, 1) * 4.0\n      END\n"
  in
  check Alcotest.string "2-d array by reference" "4" out

let suite =
  suite
  @ [
      Alcotest.test_case "interp: runtime errors" `Quick interp_runtime_errors;
      Alcotest.test_case "interp: assumed-size arrays" `Quick interp_assumed_size_arrays;
      Alcotest.test_case "interp: parameter coercion" `Quick interp_param_coercion;
      Alcotest.test_case "interp: whole-array passing" `Quick interp_whole_array_pass;
    ]

let interp_call_depth_guard () =
  (* unbounded recursion must fail cleanly, not blow the OCaml stack *)
  let prog =
    Program.of_source
      "      PROGRAM T\n      CALL LOOPY(0)\n      END\n\n      SUBROUTINE LOOPY(N)\n      INTEGER N\n      CALL LOOPY(N + 1)\n      END\n"
  in
  let config = { Interp.default_config with max_call_depth = 500 } in
  let vm = Interp.create ~config prog in
  match Interp.run vm with
  | exception Interp.Call_depth_exceeded d -> check cb "depth reported" true (d > 500)
  | _ -> Alcotest.fail "expected Call_depth_exceeded"

let suite =
  suite @ [ Alcotest.test_case "interp: call depth guard" `Quick interp_call_depth_guard ]

(* ---------------- Differential: Tree vs Compiled backends ----------------

   The compiled backend (slot frames + closure code) must be
   observationally identical to the tree walker: same cycles, steps,
   output, probe counters, invocation counts and oracle node/edge counts
   on every program.  We check this on every generated program (which
   exercises DO nests, IFs, calls, arrays and the PRNG intrinsics) and on
   the demo corpus (which adds computed GOTO, recursion and unstructured
   control flow). *)

module Label = S89_cfg.Label
module Probe = S89_vm.Probe

let placement_probes prog =
  S89_profiling.Placement.probes
    (S89_profiling.Placement.plan ~second_moments:true
       (S89_profiling.Analysis.of_program prog))

let run_backend ~instr ~seed backend prog =
  let config = { Interp.default_config with seed; instr; backend } in
  let vm = Interp.create ~config prog in
  let outcome = Interp.run vm in
  (vm, outcome)

let check_backends_agree ?(instr = Probe.empty) ?(seed = 42) what prog =
  let t, ot = run_backend ~instr ~seed Interp.Tree prog in
  let against tag backend =
    let what = Printf.sprintf "%s [%s]" what tag in
    let c, oc = run_backend ~instr ~seed backend prog in
    check cb (what ^ ": outcome") true (ot = oc);
    check ci (what ^ ": cycles") (Interp.cycles t) (Interp.cycles c);
    check ci (what ^ ": steps") (Interp.steps t) (Interp.steps c);
    check Alcotest.string (what ^ ": output") (Interp.output t)
      (Interp.output c);
    check (Alcotest.array ci) (what ^ ": counters") (Interp.counters t)
      (Interp.counters c);
    List.iter
      (fun (p : Program.proc) ->
        let name = p.Program.name in
        check ci (what ^ ": invocations " ^ name) (Interp.invocations t name)
          (Interp.invocations c name);
        let cfg = p.Program.cfg in
        for node = 0 to Cfg.num_nodes cfg - 1 do
          check ci
            (Printf.sprintf "%s: execs %s/%d" what name node)
            (Interp.node_execs t name node)
            (Interp.node_execs c name node);
          List.iter
            (fun l ->
              check ci
                (Printf.sprintf "%s: edge %s/%d/%s" what name node
                   (Label.to_string l))
                (Interp.edge_count t name node l)
                (Interp.edge_count c name node l))
            (S89_cfg.Cfg.out_labels cfg node)
        done)
      (Program.procs prog)
  in
  against "compiled" Interp.Compiled;
  against "bytecode" Interp.Bytecode

let diff_generated () =
  for seed = 0 to 59 do
    let prog = Gen_prog.gen_program seed in
    let instr = placement_probes prog in
    check_backends_agree ~instr ~seed (Printf.sprintf "gen %d" seed) prog
  done

let diff_demos () =
  List.iter
    (fun (name, src) ->
      let prog = Program.of_source src in
      let instr = placement_probes prog in
      check_backends_agree ~instr (Printf.sprintf "demo %s" name) prog)
    [
      ("fig1", S89_workloads.Demos.fig1 ());
      ("branchy", S89_workloads.Demos.branchy ());
      ("chunky", S89_workloads.Demos.chunky ());
      ("nested_random", S89_workloads.Demos.nested_random ());
      ("recursive", S89_workloads.Demos.recursive ());
      ("computed_goto", S89_workloads.Demos.computed_goto ());
      ("sort", S89_workloads.Demos.sort ());
      ("sieve", S89_workloads.Demos.sieve ());
    ]

(* Multi-way Select dispatch: per-Case oracle edge counts and edge probes.
   A 3-arm computed GOTO driven by IRAND(4) takes each Case and the
   fallthrough; per-label counts must agree across backends, sum to the
   trip count, and edge probes attached to every outgoing label must
   reproduce the oracle counts exactly. *)
let select_edge_bookkeeping () =
  let n = 200 in
  let prog = Program.of_source (S89_workloads.Demos.computed_goto ~n ()) in
  let p = Program.find prog "CGOTO" in
  let cfg = p.Program.cfg in
  let num_nodes = Cfg.num_nodes cfg in
  let sel = ref (-1) in
  for i = 0 to num_nodes - 1 do
    match (Cfg.info cfg i).Ir.ir with Ir.Select _ -> sel := i | _ -> ()
  done;
  check cb "found Select node" true (!sel >= 0);
  let sel = !sel in
  let labels = S89_cfg.Cfg.out_labels cfg sel in
  check ci "four outgoing labels" 4 (List.length labels);
  let instr = Probe.make ~n_counters:(List.length labels) in
  List.iteri
    (fun k l ->
      Probe.add_edge_action instr ~proc:"CGOTO" ~num_nodes ~node:sel ~label:l
        (Probe.Incr k))
    labels;
  let t, _ = run_backend ~instr ~seed:7 Interp.Tree prog in
  let c, _ = run_backend ~instr ~seed:7 Interp.Compiled prog in
  let b, _ = run_backend ~instr ~seed:7 Interp.Bytecode prog in
  let total = ref 0 in
  List.iteri
    (fun k l ->
      let et = Interp.edge_count t "CGOTO" sel l in
      let ec = Interp.edge_count c "CGOTO" sel l in
      let eb = Interp.edge_count b "CGOTO" sel l in
      check ci (Printf.sprintf "oracle agrees on %s" (Label.to_string l)) et ec;
      check ci
        (Printf.sprintf "bytecode oracle agrees on %s" (Label.to_string l))
        et eb;
      check ci
        (Printf.sprintf "tree probe matches oracle on %s" (Label.to_string l))
        et
        (Interp.counters t).(k);
      check ci
        (Printf.sprintf "compiled probe matches oracle on %s" (Label.to_string l))
        ec
        (Interp.counters c).(k);
      check ci
        (Printf.sprintf "bytecode probe matches oracle on %s" (Label.to_string l))
        eb
        (Interp.counters b).(k);
      total := !total + ec)
    labels;
  check ci "case counts sum to trips" n !total;
  (* IRAND(4) over 3 arms: every arm and the fallthrough must fire *)
  List.iter
    (fun l ->
      check cb
        (Printf.sprintf "%s taken at least once" (Label.to_string l))
        true
        (Interp.edge_count c "CGOTO" sel l > 0))
    labels

let suite =
  suite
  @ [
      Alcotest.test_case "backends: 60 generated programs" `Quick diff_generated;
      Alcotest.test_case "backends: demo corpus" `Quick diff_demos;
      Alcotest.test_case "backends: Select edge bookkeeping" `Quick
        select_edge_bookkeeping;
    ]

(* ---------------- PGO: reoptimization and emission plans ----------------

   Two invariants behind the PGO loop.  (1) Idempotence: optimizing an
   already-optimized program is the identity (folding, propagation and
   dead-code reach a fixpoint on the first application) — both for the
   structural [Optimize.program] and the node-id-preserving
   [Optimize.reoptimize].  (2) Plan invisibility: an emission plan
   (hot leaf-call inlining, hot-first layout, native intrinsics) changes
   wall-clock speed only, so the analysis report estimated from a
   PGO-planned bytecode run is byte-identical to the non-PGO one. *)

module Pipeline = S89_core.Pipeline
module Report = S89_core.Report
module Optimize = S89_vm.Optimize

let cfg_equal (c1 : Ir.info Cfg.t) (c2 : Ir.info Cfg.t) =
  Cfg.num_nodes c1 = Cfg.num_nodes c2
  && Cfg.entry c1 = Cfg.entry c2
  && Cfg.exits c1 = Cfg.exits c2
  &&
  let ok = ref true in
  for u = 0 to Cfg.num_nodes c1 - 1 do
    if
      (Cfg.info c1 u).Ir.ir <> (Cfg.info c2 u).Ir.ir
      || Cfg.node_type c1 u <> Cfg.node_type c2 u
      || Cfg.succ_edges c1 u <> Cfg.succ_edges c2 u
    then ok := false
  done;
  !ok

let progs_equal p1 p2 =
  List.for_all2
    (fun (a : Program.proc) (b : Program.proc) ->
      String.equal a.Program.name b.Program.name
      && cfg_equal a.Program.cfg b.Program.cfg)
    (Program.procs p1) (Program.procs p2)

let optimize_twice_idempotent () =
  for seed = 0 to 29 do
    let prog = Gen_prog.gen_program seed in
    let once = Optimize.program prog in
    let twice = Optimize.program once in
    check cb
      (Printf.sprintf "Optimize.program idempotent on gen %d" seed)
      true (progs_equal once twice);
    let r1 = Optimize.reoptimize prog in
    let r2 = Optimize.reoptimize r1 in
    check cb
      (Printf.sprintf "Optimize.reoptimize idempotent on gen %d" seed)
      true (progs_equal r1 r2);
    (* node-id preservation: same node count per procedure as the input *)
    List.iter2
      (fun (a : Program.proc) (b : Program.proc) ->
        check ci
          (Printf.sprintf "reoptimize preserves nodes of %s (gen %d)"
             a.Program.name seed)
          (Cfg.num_nodes a.Program.cfg)
          (Cfg.num_nodes b.Program.cfg))
      (Program.procs prog) (Program.procs r1)
  done

(* One uninstrumented bytecode run collects exact node frequencies; the
   derived plan re-runs the *same* IR.  Oracle totals (via the inlined
   regions' read-side summation) and hence the full estimated report
   must match byte for byte. *)
let pgo_plan_reports_identical () =
  for seed = 0 to 59 do
    let prog = Gen_prog.gen_program seed in
    let t = Pipeline.create prog in
    let vm0 = Pipeline.run_once ~backend:Interp.Bytecode t in
    let freq =
      List.map
        (fun (p : Program.proc) ->
          let name = p.Program.name in
          ( name,
            Array.init
              (Cfg.num_nodes p.Program.cfg)
              (Interp.node_execs vm0 name) ))
        (Program.procs prog)
    in
    let plan = Pipeline.plan_of_freq prog freq in
    let config =
      {
        Interp.default_config with
        Interp.cost_model = CM.optimized;
        backend = Interp.Bytecode;
        emit_plan = Some plan;
      }
    in
    let vm1 = Interp.create ~config prog in
    ignore (Interp.run vm1);
    check ci
      (Printf.sprintf "pgo plan cycles agree on gen %d" seed)
      (Interp.cycles vm0) (Interp.cycles vm1);
    let r0 = Fmt.str "%a" Report.pp (Pipeline.estimate_oracle t vm0) in
    let r1 = Fmt.str "%a" Report.pp (Pipeline.estimate_oracle t vm1) in
    check cb
      (Printf.sprintf "pgo plan report byte-identical on gen %d" seed)
      true (String.equal r0 r1)
  done

let pgo_loop_exact_prediction () =
  List.iter
    (fun (name, src) ->
      let t = Pipeline.of_source src in
      let pr = Pipeline.pgo ~seed:7 t in
      (* reoptimize preserves frequencies, so the closed-form prediction
         is exact, and a reoptimized fixpoint costs no more than before *)
      check ci
        (Printf.sprintf "pgo predicted = measured on %s" name)
        pr.Pipeline.pgo_measured_delta pr.Pipeline.pgo_predicted_delta;
      check cb
        (Printf.sprintf "pgo never regresses cycles on %s" name)
        true
        (pr.Pipeline.pgo_cycles_after <= pr.Pipeline.pgo_cycles_before))
    [
      ("branchy", S89_workloads.Demos.branchy ());
      ("chunky", S89_workloads.Demos.chunky ());
      ("sort", S89_workloads.Demos.sort ());
    ]

let suite =
  suite
  @ [
      Alcotest.test_case "pgo: optimize twice is identity" `Quick
        optimize_twice_idempotent;
      Alcotest.test_case "pgo: plan-only reports byte-identical" `Quick
        pgo_plan_reports_identical;
      Alcotest.test_case "pgo: prediction exact on demos" `Quick
        pgo_loop_exact_prediction;
    ]
