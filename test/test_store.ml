(* PR-5 surface: the crash-safe store (WAL framing + recovery, epoch'd
   snapshot compaction), the supervision layer (restart/backoff/circuit
   breaker, deterministic jitter), and the checkpointed batch service
   (kill-and-resume byte-identity).

   The recovery properties are exercised over RANDOM truncation and
   corruption offsets: the recovered prefix must be exactly the records
   whose frames are intact and checksum-valid, never more, never fewer. *)

module Wal = S89_store.Wal
module Store = S89_store.Store
module Database = S89_profiling.Database
module Supervise = S89_exec.Supervise
module Pipeline = S89_core.Pipeline
module Service = S89_core.Service
module Diag = S89_diag.Diag
module Fault = S89_util.Fault
module Label = S89_cfg.Label

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string
let csl = Alcotest.(list string)

let spec_of s =
  match Fault.parse s with Ok sp -> sp | Error m -> Alcotest.fail m

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_tmp_dir f =
  let dir = Filename.temp_file "s89store" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ | Unix.Unix_error _ -> ()) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ---------------- WAL framing + recovery ---------------- *)

let wal_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "w.log" in
  let payloads = [ "alpha"; ""; "with space"; "multi\nline\npayload"; "rec 3 fake\nheader-lookalike" ] in
  let w, r0 = Wal.open_ ~fsync:false path in
  check ci "fresh file has no records" 0 (List.length r0.Wal.payloads);
  List.iter (Wal.append w) payloads;
  check ci "records counted" (List.length payloads) (Wal.records w);
  Wal.close w;
  let w2, r = Wal.open_ ~fsync:false path in
  check csl "recovered = appended" payloads r.Wal.payloads;
  check ci "nothing dropped" 0 r.Wal.dropped_bytes;
  Wal.close w2

(* payloads drawn from a seeded stdlib PRNG: newlines, spaces and
   header-lookalike bytes included on purpose *)
let random_payloads st =
  let n = Random.State.int st 8 in
  List.init n (fun _ ->
      String.init (Random.State.int st 30) (fun _ ->
          match Random.State.int st 6 with
          | 0 -> '\n'
          | 1 -> ' '
          | 2 -> 'r'
          | _ -> Char.chr (32 + Random.State.int st 95)))

(* byte offset just past record [k]'s frame, for each k *)
let frame_ends payloads =
  List.fold_left
    (fun acc p ->
      let last = match acc with e :: _ -> e | [] -> 0 in
      (last + String.length (Wal.frame p)) :: acc)
    [] payloads
  |> List.rev

let wal_truncation_prop =
  QCheck.Test.make ~count:300 ~name:"WAL recovery after truncation = intact-frame prefix"
    QCheck.(pair (int_range 0 100000) (int_range 0 100000))
    (fun (seed, cut_seed) ->
      let st = Random.State.make [| seed |] in
      let payloads = random_payloads st in
      let full = String.concat "" (List.map Wal.frame payloads) in
      let cut = Random.State.make [| cut_seed |] |> fun st -> Random.State.int st (String.length full + 1) in
      let r = Wal.recover_string (String.sub full 0 cut) in
      let ends = frame_ends payloads in
      let expect_n = List.length (List.filter (fun e -> e <= cut) ends) in
      let expect_valid = List.nth_opt (0 :: ends) expect_n |> Option.get in
      r.Wal.payloads = List.filteri (fun i _ -> i < expect_n) payloads
      && r.Wal.valid_bytes = expect_valid
      && r.Wal.dropped_bytes = cut - expect_valid)

let wal_corruption_prop =
  QCheck.Test.make ~count:300
    ~name:"WAL recovery after a byte flip = records before the corrupt one"
    QCheck.(triple (int_range 0 100000) (int_range 0 100000) (int_range 1 255))
    (fun (seed, pos_seed, mask) ->
      (* mask 0x20 only flips ASCII case, which the checksum-hex compare
         deliberately tolerates — every other mask must invalidate *)
      QCheck.assume (mask land 0xff <> 0x20);
      let st = Random.State.make [| seed |] in
      let payloads = random_payloads st in
      QCheck.assume (payloads <> []);
      let full = String.concat "" (List.map Wal.frame payloads) in
      let pos = Random.State.make [| pos_seed |] |> fun st -> Random.State.int st (String.length full) in
      let corrupted = Bytes.of_string full in
      Bytes.set corrupted pos (Char.chr (Char.code full.[pos] lxor mask));
      let r = Wal.recover_string (Bytes.to_string corrupted) in
      (* index of the record whose frame contains the flipped byte *)
      let k = List.length (List.filter (fun e -> e <= pos) (frame_ends payloads)) in
      r.Wal.payloads = List.filteri (fun i _ -> i < k) payloads)

let wal_open_truncates_torn_tail () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "w.log" in
  let w, _ = Wal.open_ ~fsync:false path in
  Wal.append w "one";
  Wal.append w "two";
  Wal.close w;
  let intact = read_file path in
  write_file path (intact ^ String.sub (Wal.frame "three") 0 7);
  let w2, r = Wal.open_ ~fsync:false path in
  check csl "torn tail dropped" [ "one"; "two" ] r.Wal.payloads;
  check cb "dropped bytes reported" true (r.Wal.dropped_bytes > 0);
  check cs "file truncated to the valid prefix" intact (read_file path);
  Wal.append w2 "three";
  Wal.close w2;
  let w3, r3 = Wal.open_ ~fsync:false path in
  check csl "append after recovery lands cleanly" [ "one"; "two"; "three" ]
    r3.Wal.payloads;
  Wal.close w3

let wal_torn_fault_injection () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "w.log" in
  let w, _ = Wal.open_ ~fsync:false path in
  Wal.append w "before";
  (* wal_torn:1.0 fires on the next append: half the record is written,
     then the injected crash *)
  (match
     Fault.with_spec (Some (spec_of "wal_torn:1.0,seed:5")) (fun () ->
         Wal.append w "doomed")
   with
  | () -> Alcotest.fail "expected the injected torn write to raise"
  | exception Fault.Injected _ -> ());
  Wal.close w;
  let w2, r = Wal.open_ ~fsync:false path in
  check csl "torn record dropped, prior record intact" [ "before" ] r.Wal.payloads;
  check cb "torn bytes present before recovery" true (r.Wal.dropped_bytes > 0);
  Wal.close w2

(* ---------------- Database v2 repair property ---------------- *)

let random_db st =
  let db = Database.create () in
  let per_proc = Hashtbl.create 4 in
  let n = 1 + Random.State.int st 4 in
  for p = 0 to n - 1 do
    let tbl = Hashtbl.create 4 in
    for node = 0 to Random.State.int st 5 do
      Hashtbl.replace tbl (node, (if Random.State.bool st then Label.T else Label.F))
        (Random.State.int st 1000)
    done;
    Hashtbl.replace per_proc (Printf.sprintf "P%d" p) tbl
  done;
  Database.accumulate db per_proc;
  db

let db_repair_prop =
  QCheck.Test.make ~count:200
    ~name:"Database ~repair absorbs any truncation/corruption offset"
    QCheck.(triple (int_range 0 100000) (int_range 0 100000) (int_range 1 255))
    (fun (seed, off_seed, mask) ->
      QCheck.assume (mask land 0xff <> 0x20);
      let st = Random.State.make [| seed |] in
      let db = random_db st in
      let full = Database.to_string db in
      let ost = Random.State.make [| off_seed |] in
      let mangled =
        if Random.State.bool ost then
          (* truncation at a random byte offset *)
          String.sub full 0 (Random.State.int ost (String.length full))
        else begin
          (* single byte flip at a random offset *)
          let pos = Random.State.int ost (String.length full) in
          let b = Bytes.of_string full in
          Bytes.set b pos (Char.chr (Char.code full.[pos] lxor mask));
          Bytes.to_string b
        end
      in
      QCheck.assume (mangled <> full);
      with_tmp_dir @@ fun dir ->
      let path = Filename.concat dir "m.db" in
      write_file path mangled;
      let strict_sound =
        (* strict load must reject, except for semantically invisible
           mangling (e.g. truncating only the final newline — the
           line-based parser cannot see it) where it must round-trip *)
        match Database.load path with
        | loaded -> Database.to_string loaded = full
        | exception Database.Load_error _ -> true
      in
      let repaired_loads =
        match Database.load ~repair:true path with
        | (_ : Database.t) -> true
        | exception _ -> false
      in
      strict_sound && repaired_loads)

(* ---------------- store semantics ---------------- *)

let totals_of proc rows =
  let tbl = Hashtbl.create 4 in
  List.iter (fun (cond, v) -> Hashtbl.replace tbl cond v) rows;
  let per_proc = Hashtbl.create 1 in
  Hashtbl.replace per_proc proc tbl;
  per_proc

let store_basic_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let s = Store.open_ ~fsync:false ~dir () in
  Store.set_meta s [ ("base-seed", "11"); ("runs", "3") ];
  Store.append_event s "ana MAIN ok";
  Store.append_event s "ana MAIN ok";
  Store.append_run s ~seed:11 (totals_of "MAIN" [ ((1, Label.T), 5) ]);
  Store.append_run s ~seed:12 (totals_of "MAIN" [ ((1, Label.T), 7) ]);
  check ci "runs accumulate" 2 (Store.runs s);
  Store.close s;
  let s2 = Store.open_ ~fsync:false ~dir () in
  check ci "runs recovered" 2 (Store.runs s2);
  check (Alcotest.option cs) "meta recovered" (Some "11")
    (Store.meta_find s2 "base-seed");
  check csl "events deduplicated" [ "ana MAIN ok" ] (Store.events s2);
  check ci "sums merged" 12
    (Hashtbl.fold (fun _ v acc -> acc + v)
       (Database.proc_totals (Store.database s2) "MAIN")
       0);
  check csl "clean recovery has no diags" []
    (List.map Diag.to_string (Store.recovery_diags s2));
  Store.close s2

let store_compaction_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let s = Store.open_ ~fsync:false ~compact_threshold:2 ~dir () in
  Store.set_meta s [ ("k", "v") ];
  Store.append_event s "ana A ok";
  for r = 0 to 4 do
    Store.append_run s ~seed:r (totals_of "A" [ ((1, Label.T), 1) ])
  done;
  check cb "auto-compaction advanced the epoch" true (Store.epoch s > 0);
  Store.close s;
  let s2 = Store.open_ ~fsync:false ~dir () in
  check ci "all runs survive compaction" 5 (Store.runs s2);
  check (Alcotest.option cs) "meta carried across epochs" (Some "v")
    (Store.meta_find s2 "k");
  check csl "journal carried across epochs" [ "ana A ok" ] (Store.events s2);
  check ci "sum preserved" 5
    (Hashtbl.fold (fun _ v acc -> acc + v)
       (Database.proc_totals (Store.database s2) "A")
       0);
  Store.close s2

(* crash window 1: the next epoch's WAL was written but the snapshot
   rename never happened — the uncommitted WAL must be discarded and the
   old epoch replayed in full (nothing double-counted, nothing lost) *)
let store_uncommitted_compaction_discarded () =
  with_tmp_dir @@ fun dir ->
  let s = Store.open_ ~fsync:false ~dir () in
  Store.append_run s ~seed:1 (totals_of "A" [ ((1, Label.T), 3) ]);
  Store.append_run s ~seed:2 (totals_of "A" [ ((1, Label.T), 4) ]);
  let epoch0 = Store.epoch s in
  Store.close s;
  (* simulate the crashed compaction's step 1 *)
  let w, _ = Wal.open_ ~fsync:false (Filename.concat dir "wal-000001.log") in
  Wal.append w "meta\nk v";
  Wal.close w;
  let s2 = Store.open_ ~fsync:false ~dir () in
  check ci "stays on the committed epoch" epoch0 (Store.epoch s2);
  check ci "no run lost" 2 (Store.runs s2);
  check (Alcotest.option cs) "uncommitted meta discarded" None
    (Store.meta_find s2 "k");
  check cb "stale next-epoch WAL removed" false
    (Sys.file_exists (Filename.concat dir "wal-000001.log"));
  Store.close s2

(* crash window 2: the snapshot rename committed but the old epoch's
   files were never deleted — replaying the stale old WAL on top of the
   snapshot would double-count *)
let store_committed_compaction_ignores_stale_wal () =
  with_tmp_dir @@ fun dir ->
  let s = Store.open_ ~fsync:false ~dir () in
  Store.append_run s ~seed:1 (totals_of "A" [ ((1, Label.T), 3) ]);
  Store.compact s;
  let epoch1 = Store.epoch s in
  Store.close s;
  (* resurrect a stale pre-compaction WAL holding the same run *)
  let w, _ = Wal.open_ ~fsync:false (Filename.concat dir "wal-000000.log") in
  Wal.append w "run 1\ntotal A 1 T 3";
  Wal.close w;
  let s2 = Store.open_ ~fsync:false ~dir () in
  check ci "snapshot epoch wins" epoch1 (Store.epoch s2);
  check ci "run not double-counted" 1 (Store.runs s2);
  check ci "sum not double-counted" 3
    (Hashtbl.fold (fun _ v acc -> acc + v)
       (Database.proc_totals (Store.database s2) "A")
       0);
  Store.close s2

let store_torn_tail_reported () =
  with_tmp_dir @@ fun dir ->
  let s = Store.open_ ~fsync:false ~dir () in
  Store.append_run s ~seed:1 (totals_of "A" [ ((1, Label.T), 3) ]);
  Store.close s;
  let wal = Filename.concat dir "wal-000000.log" in
  write_file wal (read_file wal ^ "rec 999 0123456789abcdef\nhalf");
  let s2 = Store.open_ ~fsync:false ~dir () in
  check ci "intact records replayed" 1 (Store.runs s2);
  (match Store.recovery_diags s2 with
  | [ d ] -> check cs "torn tail diagnosed" "DB002" d.Diag.code
  | ds -> Alcotest.failf "expected exactly DB002, got %d diags" (List.length ds));
  Store.close s2

let store_corrupt_snapshot_falls_back () =
  with_tmp_dir @@ fun dir ->
  let s = Store.open_ ~fsync:false ~dir () in
  Store.append_run s ~seed:1 (totals_of "A" [ ((1, Label.T), 3) ]);
  Store.compact s;
  Store.close s;
  let snap = Filename.concat dir "snapshot-000001.db" in
  let content = read_file snap in
  write_file snap (String.sub content 0 (String.length content / 2));
  let s2 = Store.open_ ~fsync:false ~dir () in
  check cb "open survives a rotted snapshot" true (Store.runs s2 >= 0);
  check cb "DB003 reported" true
    (List.exists (fun d -> d.Diag.code = "DB003") (Store.recovery_diags s2));
  Store.close s2

let store_foreign_record_rejected () =
  with_tmp_dir @@ fun dir ->
  let s = Store.open_ ~fsync:false ~dir () in
  Store.append_run s ~seed:1 (totals_of "A" [ ((1, Label.T), 3) ]);
  Store.close s;
  let w, _ = Wal.open_ ~fsync:false (Filename.concat dir "wal-000000.log") in
  Wal.append w "gibberish that frames and checksums fine";
  Wal.close w;
  match Store.open_ ~fsync:false ~dir () with
  | _ -> Alcotest.fail "expected Store.Corrupt"
  | exception Store.Corrupt _ -> ()

(* ---------------- supervision ---------------- *)

let fast_policy =
  { Supervise.default_policy with base_backoff = 1e-6; max_backoff = 1e-5 }

let supervise_retry_then_success () =
  let events = ref [] in
  let t =
    Supervise.create ~policy:fast_policy
      ~on_event:(fun e -> events := e :: !events)
      ()
  in
  let calls = ref 0 in
  let v =
    Supervise.protect t ~key:"K" (fun () ->
        incr calls;
        if !calls < 3 then failwith "transient";
        !calls)
  in
  check ci "succeeded on the final restart" 3 v;
  check ci "restart events" 2
    (List.length
       (List.filter (function Supervise.Restarted _ -> true | _ -> false) !events));
  check ci "success resets the breaker" 0 (Supervise.failure_count t ~key:"K")

let supervise_breaker_trips () =
  let tripped = ref 0 in
  let t =
    Supervise.create ~policy:{ fast_policy with breaker_threshold = 2 }
      ~on_event:(function Supervise.Tripped _ -> incr tripped | _ -> ())
      ()
  in
  let boom () = Supervise.protect t ~key:"K" (fun () -> failwith "always") in
  (match boom () with _ -> () | exception Failure _ -> ());
  (match boom () with _ -> () | exception Failure _ -> ());
  check cb "breaker open after threshold" true (Supervise.breaker_open t ~key:"K");
  check ci "tripped exactly once" 1 !tripped;
  let ran = ref false in
  (match
     Supervise.protect t ~key:"K" (fun () ->
         ran := true;
         ())
   with
  | () -> Alcotest.fail "open circuit must reject"
  | exception Supervise.Circuit_open k -> check cs "names the key" "K" k);
  check cb "rejected work never ran" false !ran;
  check cb "other keys unaffected" false (Supervise.breaker_open t ~key:"L")

let supervise_pre_trip () =
  let t = Supervise.create ~policy:fast_policy () in
  Supervise.trip t ~key:"P";
  match Supervise.protect t ~key:"P" (fun () -> ()) with
  | () -> Alcotest.fail "pre-tripped key must reject"
  | exception Supervise.Circuit_open _ -> ()

(* the full breaker cycle under a fake clock: closed → tripped → open
   (rejecting) → half-open after cooldown → failed probe re-opens →
   successful probe closes and resets; during a probe every other call
   is still rejected *)
let supervise_half_open_transitions () =
  let now = ref 0.0 in
  let events = ref [] in
  let policy =
    { fast_policy with max_restarts = 0; breaker_threshold = 2; cooldown = 10.0 }
  in
  let t =
    Supervise.create ~policy
      ~on_event:(fun e -> events := e :: !events)
      ~clock:(fun () -> !now) ()
  in
  let fail_once () =
    try Supervise.protect t ~key:"T" (fun () -> failwith "down")
    with Failure _ -> ()
  in
  fail_once ();
  fail_once ();
  check cb "tripped at threshold" true (Supervise.breaker_open t ~key:"T");
  (match Supervise.breaker_state t ~key:"T" with
  | Supervise.Breaker_open { remaining } ->
      check cb "remaining cooldown reported" true
        (remaining > 0.0 && remaining <= 10.0)
  | _ -> Alcotest.fail "expected Breaker_open");
  (match Supervise.protect t ~key:"T" (fun () -> ()) with
  | () -> Alcotest.fail "open circuit must reject before cooldown"
  | exception Supervise.Circuit_open _ -> ());
  now := 11.0;
  check cb "half-open once cooldown elapses" true
    (Supervise.breaker_state t ~key:"T" = Supervise.Breaker_half_open);
  (* failing probe re-opens for another cooldown window *)
  fail_once ();
  (match Supervise.breaker_state t ~key:"T" with
  | Supervise.Breaker_open _ -> ()
  | _ -> Alcotest.fail "failed probe must re-open");
  now := 22.0;
  (* successful probe closes; a second call DURING the probe rejects *)
  Supervise.protect t ~key:"T" (fun () ->
      match Supervise.protect t ~key:"T" (fun () -> ()) with
      | () -> Alcotest.fail "concurrent call during probe must reject"
      | exception Supervise.Circuit_open _ -> ());
  check cb "closed after successful probe" true
    (Supervise.breaker_state t ~key:"T" = Supervise.Breaker_closed);
  check ci "failure count reset" 0 (Supervise.failure_count t ~key:"T");
  let tags =
    List.rev_map
      (function
        | Supervise.Tripped _ -> "tripped"
        | Supervise.Rejected_open _ -> "rejected"
        | Supervise.Half_opened _ -> "half-open"
        | Supervise.Closed _ -> "closed"
        | Supervise.Restarted _ -> "restarted"
        | Supervise.Wedged _ -> "wedged")
      !events
  in
  check csl "event sequence"
    [ "tripped"; "rejected"; "half-open"; "half-open"; "rejected"; "closed" ]
    tags

(* trips arriving concurrently from worker domains serving different
   tenants: each tenant trips exactly once, independently, and the
   per-key backoff schedules are identical whether computed before,
   inside the domains, or after — golden determinism under contention *)
let supervise_concurrent_tenant_trips () =
  let policy =
    { fast_policy with max_restarts = 2; breaker_threshold = 3; seed = 5 }
  in
  let mu = Mutex.create () in
  let tripped = ref [] in
  let t =
    Supervise.create ~policy
      ~on_event:(function
        | Supervise.Tripped { key; _ } ->
            Mutex.lock mu;
            tripped := key :: !tripped;
            Mutex.unlock mu
        | _ -> ())
      ()
  in
  let tenants = [| "acme"; "bravo"; "corp"; "dyn" |] in
  let before =
    Array.map
      (fun k -> Supervise.backoff_schedule policy ~key:(Fault.string_key k))
      tenants
  in
  let domains =
    Array.map
      (fun tenant ->
        Domain.spawn (fun () ->
            for _ = 1 to policy.Supervise.breaker_threshold do
              try Supervise.protect t ~key:tenant (fun () -> failwith tenant)
              with Failure _ | Supervise.Circuit_open _ -> ()
            done;
            Supervise.backoff_schedule policy ~key:(Fault.string_key tenant)))
      tenants
  in
  let inside = Array.map Domain.join domains in
  Array.iteri
    (fun i tenant ->
      check cb "schedule stable across domains" true (inside.(i) = before.(i));
      check cb "schedule stable after the trips" true
        (Supervise.backoff_schedule policy ~key:(Fault.string_key tenant)
        = before.(i));
      check cb "tenant tripped" true (Supervise.breaker_open t ~key:tenant))
    tenants;
  check csl "each tenant tripped exactly once"
    (List.sort compare (Array.to_list tenants))
    (List.sort compare !tripped);
  (* distinct keys draw distinct deterministic jitter *)
  check cb "schedules differ across tenants" true
    (List.sort_uniq compare (Array.to_list (Array.map (fun l -> l) before))
     |> List.length > 1)

(* golden vectors pin the (seed, site, key, attempt) decision stream:
   any process, any scheduling, any platform must reproduce these
   exactly — this is what makes fault-injected runs and backoff
   schedules replayable from just the seed *)
let fault_golden_vectors () =
  let sp = Fault.with_seed 42 in
  let cases =
    [ (Fault.Worker_raise, 0, 0, 0.8034224435705265);
      (Fault.Worker_raise, 1, 0, 0.7440211613241372);
      (Fault.Worker_raise, 7, 2, 0.43168344791838098);
      (Fault.Worker_raise, 1000, 5, 0.19308715509427732);
      (Fault.Wal_torn, 0, 0, 0.24783933341408426);
      (Fault.Wal_torn, 1, 0, 0.57306591970632959);
      (Fault.Wal_torn, 7, 2, 0.63674451660440901);
      (Fault.Wal_torn, 1000, 5, 0.19306023796764138);
      (Fault.Backoff, 0, 0, 0.26825905238603898);
      (Fault.Backoff, 1, 0, 0.18669102300772844);
      (Fault.Backoff, 7, 2, 0.044454601929756477);
      (Fault.Backoff, 1000, 5, 0.48432526449589863) ]
  in
  List.iter
    (fun (site, key, attempt, expect) ->
      check (Alcotest.float 1e-15) "uniform draw" expect
        (Fault.uniform sp site ~key ~attempt))
    cases;
  (* a parsed spec with the same seed agrees with the golden stream *)
  let parsed = spec_of "wal_torn:0.5,seed:42" in
  check (Alcotest.float 1e-15) "parsed spec, same stream" 0.24783933341408426
    (Fault.uniform parsed Fault.Wal_torn ~key:0 ~attempt:0);
  check cb "fires iff uniform < probability" true
    (Fault.fires parsed Fault.Wal_torn ~key:0 ~attempt:0);
  check cb "does not fire above threshold" false
    (Fault.fires parsed Fault.Wal_torn ~key:1 ~attempt:0)

let backoff_schedule_deterministic () =
  let policy = { Supervise.default_policy with seed = 42; max_restarts = 4 } in
  let golden =
    [ 0.001026825905238604; 0.0020207501244364195; 0.0041057812272752561;
      0.008114270063023005 ]
  in
  check (Alcotest.list (Alcotest.float 1e-15)) "golden schedule, key 0" golden
    (Supervise.backoff_schedule policy ~key:0);
  check cb "repeatable" true
    (Supervise.backoff_schedule policy ~key:3
    = Supervise.backoff_schedule policy ~key:3);
  (* an active S89_FAULTS spec with the same seed yields the same
     schedule: the jitter rides the fault decision stream *)
  let under_spec =
    Fault.with_spec (Some (spec_of "seed:42")) (fun () ->
        Supervise.backoff_schedule policy ~key:0)
  in
  check (Alcotest.list (Alcotest.float 1e-15)) "spec seed = policy seed" golden
    under_spec;
  List.iter
    (fun d ->
      check cb "within ceiling + jitter" true
        (d <= policy.Supervise.max_backoff *. (1.0 +. policy.Supervise.jitter)))
    (Supervise.backoff_schedule policy ~key:7)

let supervise_map_results_ordered () =
  let t = Supervise.create ~policy:fast_policy () in
  let pool = S89_exec.Pool.create ~domains:2 () in
  let arr = Array.init 50 Fun.id in
  let results, wedged = Supervise.map t pool (fun _ x -> x * x) arr in
  check (Alcotest.array ci) "input-ordered results" (Array.map (fun x -> x * x) arr)
    results;
  check ci "fast items never wedge (10s deadline)" 0 (List.length wedged)

let supervise_map_reports_wedged () =
  let policy = { fast_policy with heartbeat_deadline = 0.02 } in
  let t = Supervise.create ~policy () in
  let pool = S89_exec.Pool.create ~domains:2 () in
  let results, wedged =
    Supervise.map t pool
      (fun i x ->
        if i = 1 then Unix.sleepf 0.3;
        x + 1)
      [| 10; 20; 30 |]
  in
  check (Alcotest.array ci) "slow item still completes" [| 11; 21; 31 |] results;
  check cb "overrunning item reported" true (List.mem_assoc 1 wedged)

(* ---------------- pipeline hooks ---------------- *)

let two_proc_src =
  "PROGRAM M\n  DO I = 1, 5\n    CALL A()\n  ENDDO\nEND\nSUBROUTINE A()\n  X = X + 1.0\nEND\n"

let pipeline_journal_lines () =
  let lines = ref [] in
  let t = Pipeline.of_source ~journal:(fun l -> lines := l :: !lines) two_proc_src in
  check ci "no degradation" 0 (List.length (Pipeline.diagnostics t));
  check csl "one ok line per procedure, in order" [ "ana M ok"; "ana A ok" ]
    (List.rev !lines)

let pipeline_pretripped_key_degrades () =
  let sup = Supervise.create ~policy:fast_policy () in
  Supervise.trip sup ~key:"A";
  let lines = ref [] in
  let t =
    Pipeline.of_source ~supervisor:sup
      ~journal:(fun l -> lines := l :: !lines)
      two_proc_src
  in
  (match Pipeline.diagnostics t with
  | [ d ] ->
      check cs "SRV002 diagnostic" "SRV002" d.Diag.code;
      check (Alcotest.option cs) "names the procedure" (Some "A") d.Diag.proc
  | ds -> Alcotest.failf "expected one SRV002, got %d" (List.length ds));
  check cb "failure journaled" true (List.mem "ana A failed SRV002" !lines);
  (* the tripped procedure degrades to the opaque-callee path: the rest
     of the program still profiles and estimates *)
  let profile = Pipeline.profile_smart ~runs:2 t in
  let est = Pipeline.estimate_profiled t profile in
  check cb "estimate still produced" true
    (S89_core.Interproc.program_time est > 0.0)

(* ---------------- batch service: checkpoint / resume ---------------- *)

let fig1 = S89_workloads.Demos.fig1 ()

let ok = function
  | Ok v -> v
  | Error d -> Alcotest.failf "batch failed: %s" (Diag.to_string d)

let batch_completes () =
  with_tmp_dir @@ fun root ->
  let dir = Filename.concat root "store" in
  match ok (Service.batch ~fsync:false ~resume:false ~runs:4 ~seed:11 ~dir fig1) with
  | Service.Interrupted _ -> Alcotest.fail "uninterrupted batch must complete"
  | Service.Completed { runs; report } ->
      check ci "all runs done" 4 runs;
      check cb "report rendered" true (String.length report > 0);
      (* idempotent: resuming a finished batch reproduces the report *)
      (match
         ok (Service.batch ~fsync:false ~resume:true ~runs:4 ~seed:11 ~dir fig1)
       with
      | Service.Completed { runs = r2; report = rep2 } ->
          check ci "no extra runs" 4 r2;
          check cs "identical report" report rep2
      | Service.Interrupted _ -> Alcotest.fail "finished batch must stay finished")

let batch_refuses_unmarked_resume () =
  with_tmp_dir @@ fun root ->
  let dir = Filename.concat root "store" in
  ignore (ok (Service.batch ~fsync:false ~resume:false ~runs:2 ~seed:1 ~dir fig1));
  match Service.batch ~fsync:false ~resume:false ~runs:2 ~seed:1 ~dir fig1 with
  | Ok _ -> Alcotest.fail "non-empty store without --resume must be refused"
  | Error d -> check cs "DB005" "DB005" d.Diag.code

let batch_refuses_mismatched_resume () =
  with_tmp_dir @@ fun root ->
  let dir = Filename.concat root "store" in
  ignore (ok (Service.batch ~fsync:false ~resume:false ~runs:2 ~seed:1 ~dir fig1));
  match Service.batch ~fsync:false ~resume:true ~runs:2 ~seed:99 ~dir fig1 with
  | Ok _ -> Alcotest.fail "a different base seed must be refused"
  | Error d -> check cs "DB004" "DB004" d.Diag.code

(* The acceptance bar: >= 20 seeded kill points.  Each kill point k
   stops the batch after k mod (runs+1) completed runs (simulating
   SIGKILL between appends), then mangles the WAL tail with a k-seeded
   truncation or garbage append (simulating SIGKILL mid-append), then
   resumes.  Every variant must converge to the byte-identical report
   and exported database of the uninterrupted reference, with a
   loadable (checksum-valid) export and no lost completed runs. *)
let kill_resume_byte_identity () =
  with_tmp_dir @@ fun root ->
  let runs = 6 and seed = 11 in
  let export_of dir = Filename.concat root (Filename.basename dir ^ ".db") in
  let ref_dir = Filename.concat root "ref" in
  let ref_report =
    match
      ok
        (Service.batch ~fsync:false ~export:(export_of ref_dir) ~resume:false
           ~runs ~seed ~dir:ref_dir fig1)
    with
    | Service.Completed { report; _ } -> report
    | Service.Interrupted _ -> Alcotest.fail "reference must complete"
  in
  let ref_db = read_file (export_of ref_dir) in
  for k = 0 to 24 do
    let dir = Filename.concat root (Printf.sprintf "kill%02d" k) in
    let stop_after = k mod (runs + 1) in
    let completed = ref 0 in
    let should_stop () =
      (* one run finishes per poll-to-poll interval *)
      let stop = !completed >= stop_after in
      incr completed;
      stop
    in
    (match
       ok
         (Service.batch ~fsync:false ~should_stop ~resume:false ~runs ~seed ~dir
            fig1)
     with
    | Service.Interrupted { completed; total; _ } ->
        check ci "nothing beyond the kill point" stop_after completed;
        check ci "total preserved" runs total
    | Service.Completed _ -> check ci "only past-the-end kills complete" runs stop_after);
    (* mangle the WAL tail, seeded by the kill point *)
    let st = Random.State.make [| k |] in
    (match
       List.filter
         (fun f -> String.length f >= 4 && String.sub f 0 4 = "wal-")
         (Array.to_list (Sys.readdir dir))
     with
    | wal :: _ ->
        let path = Filename.concat dir wal in
        let bytes = read_file path in
        if Random.State.bool st then
          (* SIGKILL mid-append: garbage after the last durable record *)
          write_file path
            (bytes ^ String.init (Random.State.int st 40) (fun _ -> 'x'))
        else
          (* lost un-fsync'd tail: drop up to 40 trailing bytes *)
          write_file path
            (String.sub bytes 0
               (max 0 (String.length bytes - Random.State.int st 40)))
    | [] -> ());
    match
      ok
        (Service.batch ~fsync:false ~export:(export_of dir) ~resume:true ~runs
           ~seed ~dir fig1)
    with
    | Service.Interrupted _ -> Alcotest.failf "kill point %d failed to resume" k
    | Service.Completed { runs = r; report } ->
        check ci (Printf.sprintf "kill %d: run count" k) runs r;
        check cs (Printf.sprintf "kill %d: byte-identical report" k) ref_report
          report;
        check cs (Printf.sprintf "kill %d: byte-identical database" k) ref_db
          (read_file (export_of dir));
        (* the export is a valid checksummed v2 database *)
        check ci
          (Printf.sprintf "kill %d: export loads" k)
          runs
          (Database.runs (Database.load (export_of dir)))
  done

(* a seeded torn-append fault mid-batch, then a clean resume: the
   single-crash chaos scenario end to end *)
let batch_torn_append_then_resume () =
  with_tmp_dir @@ fun root ->
  let runs = 5 and seed = 3 in
  let ref_dir = Filename.concat root "ref" in
  let ref_report =
    match ok (Service.batch ~fsync:false ~resume:false ~runs ~seed ~dir:ref_dir fig1) with
    | Service.Completed { report; _ } -> report
    | Service.Interrupted _ -> Alcotest.fail "reference must complete"
  in
  let dir = Filename.concat root "torn" in
  let crashed =
    (* the injected torn write can surface as a raised [Fault.Injected]
       (mid-run-loop) or as an FLT001 diagnostic (mid-journal); either
       way the store is left with a torn tail for resume to drop *)
    match
      Fault.with_spec (Some (spec_of "wal_torn:0.4,seed:9")) (fun () ->
          Service.batch ~fsync:false ~resume:false ~runs ~seed ~dir fig1)
    with
    | Ok _ -> false
    | Error d when d.Diag.code = "FLT001" -> true
    | Error d -> Alcotest.failf "unexpected diagnostic: %s" (Diag.to_string d)
    | exception Fault.Injected _ -> true
  in
  let resume = Sys.file_exists dir && Array.length (Sys.readdir dir) > 0 in
  match
    ok (Service.batch ~fsync:false ~resume ~runs ~seed ~dir fig1)
  with
  | Service.Interrupted _ -> Alcotest.fail "resume must complete"
  | Service.Completed { report; _ } ->
      check cb "fault fired or batch completed clean" true
        (crashed || report = ref_report);
      check cs "byte-identical after the crash" ref_report report

(* a dir_fsync fault (the directory-entry durability point of the
   atomic-rename commit) kills the compaction mid-commit; recovery must
   fall back to the WAL and lose nothing *)
let store_dir_fsync_fault () =
  with_tmp_dir @@ fun dir ->
  let sp = spec_of "dir_fsync:1,seed:3" in
  let s = Store.open_ ~fsync:true ~dir () in
  Store.append_run s ~seed:1 (totals_of "A" [ ((1, Label.T), 3) ]);
  Store.append_run s ~seed:2 (totals_of "A" [ ((1, Label.T), 4) ]);
  (match Fault.with_spec (Some sp) (fun () -> Store.compact s) with
  | () -> Alcotest.fail "dir_fsync fault must fire during compaction"
  | exception Fault.Injected _ -> ());
  Store.close s;
  let s2 = Store.open_ ~fsync:true ~dir () in
  check ci "runs survive the failed dir fsync" 2 (Store.runs s2);
  check ci "sums intact" 7
    (Hashtbl.fold (fun _ v acc -> acc + v)
       (Database.proc_totals (Store.database s2) "A")
       0);
  Store.close s2

(* ---------------- serve daemon ---------------- *)

let serve_processes_spool () =
  with_tmp_dir @@ fun root ->
  let spool = Filename.concat root "spool" in
  let store_root = Filename.concat root "stores" in
  Unix.mkdir spool 0o755;
  write_file (Filename.concat spool "good.mf") fig1;
  write_file (Filename.concat spool "bad.mf") "NOT FORTRAN AT ALL";
  let stats =
    Service.serve ~fsync:false ~idle_exit:true ~runs:2 ~seed:1 ~spool ~store_root ()
  in
  check ci "good job done" 1 stats.Service.jobs_done;
  check ci "bad job failed" 1 stats.Service.jobs_failed;
  check cb "report written" true
    (Sys.file_exists (Filename.concat store_root "good.report"));
  check cb "error artifact written" true
    (Sys.file_exists (Filename.concat store_root "bad.err"));
  check cb "good job archived" true
    (Sys.file_exists (Filename.concat spool "done/good.mf"));
  check cb "bad job quarantined" true
    (Sys.file_exists (Filename.concat spool "failed/bad.mf"))

(* a failing spool scan surfaces ONE SRV005 warning per failure streak
   (not one per poll tick) and re-arms after a successful scan *)
let serve_warns_on_spool_failure () =
  with_tmp_dir @@ fun root ->
  let spool = Filename.concat root "spool" in
  let store_root = Filename.concat root "stores" in
  let dmu = Mutex.create () in
  let diags = ref [] in
  let stop = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        ignore
          (Service.serve ~fsync:false ~poll_interval:0.004
             ~should_stop:(fun () -> Atomic.get stop)
             ~on_diag:(fun d ->
               Mutex.lock dmu;
               diags := d :: !diags;
               Mutex.unlock dmu)
             ~runs:1 ~seed:1 ~spool ~store_root ()))
      ()
  in
  Thread.delay 0.05;
  (* break the spool: many failing polls, ONE warning *)
  rm_rf spool;
  Thread.delay 0.15;
  (* heal it: the next successful scan re-arms the warning *)
  Unix.mkdir spool 0o755;
  Thread.delay 0.1;
  (* break it again: exactly one more warning *)
  rm_rf spool;
  Thread.delay 0.15;
  Atomic.set stop true;
  Thread.join th;
  let srv005 =
    Mutex.lock dmu;
    let l = List.filter (fun d -> d.Diag.code = "SRV005") !diags in
    Mutex.unlock dmu;
    l
  in
  check ci "one SRV005 per failure streak" 2 (List.length srv005);
  check cb "SRV005 is a warning, not an error" true
    (List.for_all (fun d -> d.Diag.severity = Diag.Warning) srv005)

let suite =
  [
    Alcotest.test_case "WAL roundtrip" `Quick wal_roundtrip;
    Alcotest.test_case "WAL open truncates torn tail" `Quick wal_open_truncates_torn_tail;
    Alcotest.test_case "WAL torn-write fault injection" `Quick wal_torn_fault_injection;
    QCheck_alcotest.to_alcotest wal_truncation_prop;
    QCheck_alcotest.to_alcotest wal_corruption_prop;
    QCheck_alcotest.to_alcotest db_repair_prop;
    Alcotest.test_case "store roundtrip" `Quick store_basic_roundtrip;
    Alcotest.test_case "store compaction roundtrip" `Quick store_compaction_roundtrip;
    Alcotest.test_case "uncommitted compaction discarded" `Quick
      store_uncommitted_compaction_discarded;
    Alcotest.test_case "committed compaction ignores stale WAL" `Quick
      store_committed_compaction_ignores_stale_wal;
    Alcotest.test_case "torn WAL tail reported (DB002)" `Quick store_torn_tail_reported;
    Alcotest.test_case "corrupt snapshot falls back (DB003)" `Quick
      store_corrupt_snapshot_falls_back;
    Alcotest.test_case "foreign record rejected" `Quick store_foreign_record_rejected;
    Alcotest.test_case "supervise: retry then success" `Quick supervise_retry_then_success;
    Alcotest.test_case "supervise: breaker trips and rejects" `Quick
      supervise_breaker_trips;
    Alcotest.test_case "supervise: pre-tripped key rejects" `Quick supervise_pre_trip;
    Alcotest.test_case "supervise: half-open probe transitions" `Quick
      supervise_half_open_transitions;
    Alcotest.test_case "supervise: concurrent multi-tenant trips" `Quick
      supervise_concurrent_tenant_trips;
    Alcotest.test_case "fault decision golden vectors" `Quick fault_golden_vectors;
    Alcotest.test_case "backoff schedule deterministic" `Quick
      backoff_schedule_deterministic;
    Alcotest.test_case "supervised map keeps order" `Quick supervise_map_results_ordered;
    Alcotest.test_case "supervised map reports wedged items" `Quick
      supervise_map_reports_wedged;
    Alcotest.test_case "pipeline journals per procedure" `Quick pipeline_journal_lines;
    Alcotest.test_case "pre-tripped procedure degrades (SRV002)" `Quick
      pipeline_pretripped_key_degrades;
    Alcotest.test_case "batch completes and is idempotent" `Quick batch_completes;
    Alcotest.test_case "batch refuses unmarked resume (DB005)" `Quick
      batch_refuses_unmarked_resume;
    Alcotest.test_case "batch refuses mismatched resume (DB004)" `Quick
      batch_refuses_mismatched_resume;
    Alcotest.test_case "25 seeded kill points resume byte-identically" `Quick
      kill_resume_byte_identity;
    Alcotest.test_case "torn-append fault then clean resume" `Quick
      batch_torn_append_then_resume;
    Alcotest.test_case "dir-fsync fault fires during compaction" `Quick
      store_dir_fsync_fault;
    Alcotest.test_case "serve processes a spool" `Quick serve_processes_spool;
    Alcotest.test_case "serve warns once on spool failure (SRV005)" `Quick
      serve_warns_on_spool_failure;
  ]
